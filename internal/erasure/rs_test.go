package erasure

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGFAxioms(t *testing.T) {
	// Spot-check field axioms exhaustively for multiplication.
	for a := 0; a < 256; a++ {
		if gfMul(byte(a), 1) != byte(a) {
			t.Fatalf("1 is not identity for %d", a)
		}
		if gfMul(byte(a), 0) != 0 {
			t.Fatalf("0 not absorbing for %d", a)
		}
		if a != 0 {
			if gfMul(byte(a), gfInv(byte(a))) != 1 {
				t.Fatalf("inverse broken for %d", a)
			}
		}
	}
	// Commutativity and associativity on a sample.
	for a := 1; a < 256; a += 7 {
		for b := 1; b < 256; b += 11 {
			if gfMul(byte(a), byte(b)) != gfMul(byte(b), byte(a)) {
				t.Fatalf("mul not commutative at %d,%d", a, b)
			}
			for c := 1; c < 256; c += 29 {
				l := gfMul(gfMul(byte(a), byte(b)), byte(c))
				r := gfMul(byte(a), gfMul(byte(b), byte(c)))
				if l != r {
					t.Fatalf("mul not associative at %d,%d,%d", a, b, c)
				}
			}
		}
	}
}

func TestGFDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on division by zero")
		}
	}()
	gfDiv(3, 0)
}

func TestInvertMatrixIdentity(t *testing.T) {
	m := [][]byte{{1, 0}, {0, 1}}
	if !invertMatrix(m) {
		t.Fatal("identity reported singular")
	}
	if m[0][0] != 1 || m[0][1] != 0 || m[1][0] != 0 || m[1][1] != 1 {
		t.Fatalf("identity inverse wrong: %v", m)
	}
}

func TestInvertMatrixSingular(t *testing.T) {
	m := [][]byte{{1, 1}, {1, 1}}
	if invertMatrix(m) {
		t.Fatal("singular matrix inverted")
	}
}

func TestNewCoderValidation(t *testing.T) {
	for _, c := range [][2]int{{0, 1}, {1, 0}, {-1, 2}, {200, 100}} {
		if _, err := NewCoder(c[0], c[1]); err == nil {
			t.Errorf("k=%d m=%d accepted", c[0], c[1])
		}
	}
	c, err := NewCoder(4, 2)
	if err != nil || c.K() != 4 || c.M() != 2 {
		t.Fatalf("NewCoder(4,2): %v %v", c, err)
	}
}

func TestSplitJoinRoundTrip(t *testing.T) {
	c, _ := NewCoder(4, 2)
	for _, n := range []int{0, 1, 3, 4, 5, 100, 1023, 1024, 1025} {
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(i * 7)
		}
		shards := c.Split(data)
		if len(shards) != 4 {
			t.Fatalf("Split gave %d shards", len(shards))
		}
		got, err := c.Join(shards, n)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("round trip failed for n=%d", n)
		}
	}
}

func TestJoinValidation(t *testing.T) {
	c, _ := NewCoder(3, 1)
	if _, err := c.Join(make([][]byte, 2), 10); err == nil {
		t.Error("wrong shard count accepted")
	}
	bad := [][]byte{make([]byte, 4), make([]byte, 4), make([]byte, 3)}
	if _, err := c.Join(bad, 12); err == nil {
		t.Error("uneven shards accepted")
	}
}

func TestEncodeValidation(t *testing.T) {
	c, _ := NewCoder(3, 2)
	if _, err := c.Encode(make([][]byte, 2)); err == nil {
		t.Error("wrong shard count accepted")
	}
	uneven := [][]byte{make([]byte, 4), make([]byte, 4), make([]byte, 5)}
	if _, err := c.Encode(uneven); err == nil {
		t.Error("uneven shards accepted")
	}
}

// reconstructAfterLoss encodes a payload, erases the given shard indices,
// and checks reconstruction recovers the payload exactly.
func reconstructAfterLoss(t *testing.T, k, m, n int, lost []int) {
	t.Helper()
	c, err := NewCoder(k, m)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, n)
	rng := rand.New(rand.NewSource(int64(k*1000 + m*100 + n)))
	rng.Read(data)
	shards := c.Split(data)
	parity, err := c.Encode(shards)
	if err != nil {
		t.Fatal(err)
	}
	all := append(append([][]byte{}, shards...), parity...)
	for _, l := range lost {
		all[l] = nil
	}
	rec, err := c.Reconstruct(all)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Join(rec, n)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("k=%d m=%d lost=%v: payload corrupted", k, m, lost)
	}
}

func TestReconstructSingleLoss(t *testing.T) {
	for lost := 0; lost < 6; lost++ {
		reconstructAfterLoss(t, 4, 2, 1000, []int{lost})
	}
}

func TestReconstructDoubleLoss(t *testing.T) {
	for a := 0; a < 6; a++ {
		for b := a + 1; b < 6; b++ {
			reconstructAfterLoss(t, 4, 2, 512, []int{a, b})
		}
	}
}

func TestReconstructNoLossFastPath(t *testing.T) {
	reconstructAfterLoss(t, 5, 3, 777, nil)
}

func TestReconstructTooFewShards(t *testing.T) {
	c, _ := NewCoder(4, 2)
	data := c.Split(make([]byte, 100))
	parity, _ := c.Encode(data)
	all := append(append([][]byte{}, data...), parity...)
	all[0], all[1], all[2] = nil, nil, nil // 3 of 6 lost, k=4 needed
	if _, err := c.Reconstruct(all); err == nil {
		t.Fatal("reconstructed from too few shards")
	}
}

func TestReconstructValidation(t *testing.T) {
	c, _ := NewCoder(2, 1)
	if _, err := c.Reconstruct(make([][]byte, 2)); err == nil {
		t.Error("wrong slot count accepted")
	}
	bad := [][]byte{make([]byte, 4), make([]byte, 5), nil}
	if _, err := c.Reconstruct(bad); err == nil {
		t.Error("uneven survivors accepted")
	}
}

// Property: for random payloads and any m-subset of losses, RS(6,3)
// reconstructs exactly.
func TestReconstructProperty(t *testing.T) {
	c, err := NewCoder(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	f := func(data []byte, l1, l2, l3 uint8) bool {
		if len(data) == 0 {
			data = []byte{0}
		}
		shards := c.Split(data)
		parity, err := c.Encode(shards)
		if err != nil {
			return false
		}
		all := append(append([][]byte{}, shards...), parity...)
		all[int(l1)%9] = nil
		all[int(l2)%9] = nil
		all[int(l3)%9] = nil
		rec, err := c.Reconstruct(all)
		if err != nil {
			return false
		}
		got, err := c.Join(rec, len(data))
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStorageOverheadVsReplication(t *testing.T) {
	// The point of the extension: RS(8,2) costs 25% extra storage and
	// survives 2 losses; 3-way replication costs 200% for the same.
	c, _ := NewCoder(8, 2)
	payload := 8192
	shardBytes := c.ShardSize(payload) * (c.K() + c.M())
	overhead := float64(shardBytes)/float64(payload) - 1
	if overhead > 0.26 {
		t.Fatalf("RS(8,2) overhead %.2f, want ~0.25", overhead)
	}
}

func BenchmarkEncodeRS42_1MiB(b *testing.B) {
	c, _ := NewCoder(4, 2)
	data := c.Split(make([]byte, 1<<20))
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReconstructRS42_1MiB(b *testing.B) {
	c, _ := NewCoder(4, 2)
	data := c.Split(make([]byte, 1<<20))
	parity, _ := c.Encode(data)
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		all := append(append([][]byte{}, data...), parity...)
		all[1], all[3] = nil, nil
		if _, err := c.Reconstruct(all); err != nil {
			b.Fatal(err)
		}
	}
}

func TestShardSize(t *testing.T) {
	c, _ := NewCoder(4, 1)
	cases := []struct{ n, want int }{{0, 0}, {1, 1}, {4, 1}, {5, 2}, {8, 2}, {9, 3}}
	for _, cse := range cases {
		if got := c.ShardSize(cse.n); got != cse.want {
			t.Errorf("ShardSize(%d) = %d, want %d", cse.n, got, cse.want)
		}
	}
}

func ExampleCoder() {
	c, _ := NewCoder(4, 2)
	data := []byte("scientific workflow intermediate data")
	shards := c.Split(data)
	parity, _ := c.Encode(shards)
	all := append(append([][]byte{}, shards...), parity...)
	all[0], all[5] = nil, nil // lose one data and one parity shard
	rec, _ := c.Reconstruct(all)
	out, _ := c.Join(rec, len(data))
	fmt.Println(string(out))
	// Output: scientific workflow intermediate data
}
