package erasure

import (
	"errors"
	"fmt"
)

// Coder encodes stripes into k data + m parity shards and reconstructs
// from any k survivors. It is immutable and safe for concurrent use.
type Coder struct {
	k, m   int
	parity [][]byte // m×k Cauchy coefficient matrix
}

// ErrTooFewShards is returned when fewer than k shards survive.
var ErrTooFewShards = errors.New("erasure: too few shards to reconstruct")

// NewCoder returns a Reed–Solomon coder with k data shards and m parity
// shards. k must be in [1,128] and m in [1,128] with k+m <= 256 so the
// Cauchy construction below stays valid (x_i and y_j must be 256 distinct
// field elements).
func NewCoder(k, m int) (*Coder, error) {
	if k < 1 || m < 1 || k+m > 256 {
		return nil, fmt.Errorf("erasure: invalid shard counts k=%d m=%d", k, m)
	}
	// Cauchy matrix C[i][j] = 1/(x_i + y_j) with x_i = i+k, y_j = j.
	// Every square submatrix of a Cauchy matrix is invertible, which is
	// exactly the property reconstruction needs.
	parity := make([][]byte, m)
	for i := 0; i < m; i++ {
		parity[i] = make([]byte, k)
		for j := 0; j < k; j++ {
			parity[i][j] = gfInv(byte(i+k) ^ byte(j))
		}
	}
	return &Coder{k: k, m: m, parity: parity}, nil
}

// K returns the number of data shards.
func (c *Coder) K() int { return c.k }

// M returns the number of parity shards.
func (c *Coder) M() int { return c.m }

// ShardSize returns the shard length for a payload of n bytes: the payload
// is zero-padded to a multiple of k.
func (c *Coder) ShardSize(n int) int {
	return (n + c.k - 1) / c.k
}

// Split slices data into k equal shards, zero-padding the tail. The shards
// are fresh allocations; data is not retained.
func (c *Coder) Split(data []byte) [][]byte {
	size := c.ShardSize(len(data))
	shards := make([][]byte, c.k)
	for i := range shards {
		shards[i] = make([]byte, size)
		start := i * size
		if start < len(data) {
			copy(shards[i], data[start:])
		}
	}
	return shards
}

// Join reassembles the original payload of length n from k data shards.
// Shards larger than ShardSize(n) are accepted and the result clamped to n:
// a stripe truncated in metadata keeps its full-size shards on disk until
// the next overwrite, and reads of it must still succeed.
func (c *Coder) Join(shards [][]byte, n int) ([]byte, error) {
	if len(shards) != c.k {
		return nil, fmt.Errorf("erasure: Join needs %d data shards, got %d", c.k, len(shards))
	}
	size := len(shards[0])
	for _, s := range shards {
		if len(s) != size {
			return nil, fmt.Errorf("erasure: shard size %d, want %d", len(s), size)
		}
	}
	if n > c.k*size {
		return nil, fmt.Errorf("erasure: %d-byte shards cannot cover a %d-byte payload", size, n)
	}
	out := make([]byte, 0, c.k*size)
	for _, s := range shards {
		out = append(out, s...)
	}
	return out[:n], nil
}

// Encode computes the m parity shards for k equal-length data shards.
func (c *Coder) Encode(data [][]byte) ([][]byte, error) {
	if len(data) != c.k {
		return nil, fmt.Errorf("erasure: Encode needs %d data shards, got %d", c.k, len(data))
	}
	size := len(data[0])
	for _, s := range data {
		if len(s) != size {
			return nil, errors.New("erasure: data shards differ in length")
		}
	}
	parity := make([][]byte, c.m)
	for i := 0; i < c.m; i++ {
		parity[i] = make([]byte, size)
		for j := 0; j < c.k; j++ {
			mulSliceXor(c.parity[i][j], data[j], parity[i])
		}
	}
	return parity, nil
}

// Reconstruct recovers all k data shards from any k survivors. shards must
// have length k+m with missing entries nil; indices 0..k-1 are data shards
// and k..k+m-1 parity shards. The returned slice holds the k data shards;
// shards that survived are returned as-is (aliased, not copied).
func (c *Coder) Reconstruct(shards [][]byte) ([][]byte, error) {
	want := make([]int, c.k)
	for i := range want {
		want[i] = i
	}
	return c.ReconstructShards(shards, want)
}

// ReconstructShards recovers exactly the shards named in want (data or
// parity indices) from any k survivors, returning them in want order.
// This is the repair path's tool: rebuilding one lost shard costs one
// matrix row instead of a full-stripe decode+re-encode. Present shards
// requested in want are returned aliased, not copied.
func (c *Coder) ReconstructShards(shards [][]byte, want []int) ([][]byte, error) {
	if len(shards) != c.k+c.m {
		return nil, fmt.Errorf("erasure: Reconstruct needs %d shard slots, got %d", c.k+c.m, len(shards))
	}
	present := make([]int, 0, c.k)
	size := -1
	for idx, s := range shards {
		if s == nil {
			continue
		}
		if size == -1 {
			size = len(s)
		} else if len(s) != size {
			return nil, errors.New("erasure: surviving shards differ in length")
		}
		present = append(present, idx)
	}
	out := make([][]byte, len(want))
	missing := false
	for i, w := range want {
		if w < 0 || w >= c.k+c.m {
			return nil, fmt.Errorf("erasure: shard index %d out of range", w)
		}
		if shards[w] != nil {
			out[i] = shards[w]
		} else {
			missing = true
		}
	}
	if !missing {
		return out, nil
	}
	if len(present) < c.k {
		return nil, fmt.Errorf("%w: have %d of %d needed", ErrTooFewShards, len(present), c.k)
	}
	present = present[:c.k]

	// Build the k×k matrix mapping data shards to the chosen survivors:
	// row for data shard i is the identity row e_i; row for parity shard p
	// is the parity coefficient row. Its inverse maps survivors back to
	// data shards.
	mat := make([][]byte, c.k)
	for r, idx := range present {
		mat[r] = make([]byte, c.k)
		if idx < c.k {
			mat[r][idx] = 1
		} else {
			copy(mat[r], c.parity[idx-c.k])
		}
	}
	if !invertMatrix(mat) {
		return nil, errors.New("erasure: survivor matrix singular (corrupt coder state)")
	}
	for i, w := range want {
		if out[i] != nil {
			continue
		}
		// row maps the chosen survivors directly to shard w: for a data
		// shard it is a row of the inverse; for parity shard p it is the
		// parity coefficient row composed with the inverse.
		var row []byte
		if w < c.k {
			row = mat[w]
		} else {
			row = make([]byte, c.k)
			coef := c.parity[w-c.k]
			for r := 0; r < c.k; r++ {
				var v byte
				for j := 0; j < c.k; j++ {
					v ^= gfMul(coef[j], mat[j][r])
				}
				row[r] = v
			}
		}
		out[i] = make([]byte, size)
		for r, idx := range present {
			mulSliceXor(row[r], shards[idx], out[i])
		}
	}
	return out, nil
}
