package erasure

import (
	"errors"
	"fmt"
)

// Coder encodes stripes into k data + m parity shards and reconstructs
// from any k survivors. It is immutable and safe for concurrent use.
type Coder struct {
	k, m   int
	parity [][]byte // m×k Cauchy coefficient matrix
}

// ErrTooFewShards is returned when fewer than k shards survive.
var ErrTooFewShards = errors.New("erasure: too few shards to reconstruct")

// NewCoder returns a Reed–Solomon coder with k data shards and m parity
// shards. k must be in [1,128] and m in [1,128] with k+m <= 256 so the
// Cauchy construction below stays valid (x_i and y_j must be 256 distinct
// field elements).
func NewCoder(k, m int) (*Coder, error) {
	if k < 1 || m < 1 || k+m > 256 {
		return nil, fmt.Errorf("erasure: invalid shard counts k=%d m=%d", k, m)
	}
	// Cauchy matrix C[i][j] = 1/(x_i + y_j) with x_i = i+k, y_j = j.
	// Every square submatrix of a Cauchy matrix is invertible, which is
	// exactly the property reconstruction needs.
	parity := make([][]byte, m)
	for i := 0; i < m; i++ {
		parity[i] = make([]byte, k)
		for j := 0; j < k; j++ {
			parity[i][j] = gfInv(byte(i+k) ^ byte(j))
		}
	}
	return &Coder{k: k, m: m, parity: parity}, nil
}

// K returns the number of data shards.
func (c *Coder) K() int { return c.k }

// M returns the number of parity shards.
func (c *Coder) M() int { return c.m }

// ShardSize returns the shard length for a payload of n bytes: the payload
// is zero-padded to a multiple of k.
func (c *Coder) ShardSize(n int) int {
	return (n + c.k - 1) / c.k
}

// Split slices data into k equal shards, zero-padding the tail. The shards
// are fresh allocations; data is not retained.
func (c *Coder) Split(data []byte) [][]byte {
	size := c.ShardSize(len(data))
	shards := make([][]byte, c.k)
	for i := range shards {
		shards[i] = make([]byte, size)
		start := i * size
		if start < len(data) {
			copy(shards[i], data[start:])
		}
	}
	return shards
}

// Join reassembles the original payload of length n from k data shards.
func (c *Coder) Join(shards [][]byte, n int) ([]byte, error) {
	if len(shards) != c.k {
		return nil, fmt.Errorf("erasure: Join needs %d data shards, got %d", c.k, len(shards))
	}
	size := c.ShardSize(n)
	out := make([]byte, 0, n)
	for _, s := range shards {
		if len(s) != size {
			return nil, fmt.Errorf("erasure: shard size %d, want %d", len(s), size)
		}
		out = append(out, s...)
	}
	return out[:n], nil
}

// Encode computes the m parity shards for k equal-length data shards.
func (c *Coder) Encode(data [][]byte) ([][]byte, error) {
	if len(data) != c.k {
		return nil, fmt.Errorf("erasure: Encode needs %d data shards, got %d", c.k, len(data))
	}
	size := len(data[0])
	for _, s := range data {
		if len(s) != size {
			return nil, errors.New("erasure: data shards differ in length")
		}
	}
	parity := make([][]byte, c.m)
	for i := 0; i < c.m; i++ {
		parity[i] = make([]byte, size)
		for j := 0; j < c.k; j++ {
			mulSliceXor(c.parity[i][j], data[j], parity[i])
		}
	}
	return parity, nil
}

// Reconstruct recovers all k data shards from any k survivors. shards must
// have length k+m with missing entries nil; indices 0..k-1 are data shards
// and k..k+m-1 parity shards. The returned slice holds the k data shards.
func (c *Coder) Reconstruct(shards [][]byte) ([][]byte, error) {
	if len(shards) != c.k+c.m {
		return nil, fmt.Errorf("erasure: Reconstruct needs %d shard slots, got %d", c.k+c.m, len(shards))
	}
	present := make([]int, 0, c.k)
	size := -1
	for idx, s := range shards {
		if s == nil {
			continue
		}
		if size == -1 {
			size = len(s)
		} else if len(s) != size {
			return nil, errors.New("erasure: surviving shards differ in length")
		}
		present = append(present, idx)
	}
	if len(present) < c.k {
		return nil, fmt.Errorf("%w: have %d of %d needed", ErrTooFewShards, len(present), c.k)
	}
	present = present[:c.k]

	// Fast path: all data shards survived.
	allData := true
	for _, idx := range present {
		if idx >= c.k {
			allData = false
			break
		}
	}
	if allData {
		out := make([][]byte, c.k)
		dataComplete := true
		for i := 0; i < c.k; i++ {
			if shards[i] == nil {
				dataComplete = false
				break
			}
			out[i] = shards[i]
		}
		if dataComplete {
			return out, nil
		}
	}

	// Build the k×k matrix mapping data shards to the chosen survivors:
	// row for data shard i is the identity row e_i; row for parity shard p
	// is the parity coefficient row.
	mat := make([][]byte, c.k)
	for r, idx := range present {
		mat[r] = make([]byte, c.k)
		if idx < c.k {
			mat[r][idx] = 1
		} else {
			copy(mat[r], c.parity[idx-c.k])
		}
	}
	if !invertMatrix(mat) {
		return nil, errors.New("erasure: survivor matrix singular (corrupt coder state)")
	}
	out := make([][]byte, c.k)
	for i := 0; i < c.k; i++ {
		out[i] = make([]byte, size)
		for r, idx := range present {
			mulSliceXor(mat[i][r], shards[idx], out[i])
		}
	}
	return out, nil
}
