// Package erasure implements Reed–Solomon erasure coding over GF(2^8) —
// the lower-redundancy alternative to replication that the paper names as
// work in progress (§III-E): with k data shards and m parity shards, any k
// of the k+m shards reconstruct a stripe, at a storage overhead of m/k
// instead of replication's (R-1)x.
package erasure

// GF(2^8) arithmetic with the AES/Rijndael-compatible polynomial 0x11d,
// using log/exp tables built at init.

var (
	gfExp [512]byte // doubled so mul can skip the mod-255 reduction
	gfLog [256]byte
)

func init() {
	x := byte(1)
	for i := 0; i < 255; i++ {
		gfExp[i] = x
		gfLog[x] = byte(i)
		// multiply x by the generator 2 modulo the field polynomial
		carry := x&0x80 != 0
		x <<= 1
		if carry {
			x ^= 0x1d
		}
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
}

// gfMul multiplies two field elements.
func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+int(gfLog[b])]
}

// gfDiv divides a by b; b must be non-zero.
func gfDiv(a, b byte) byte {
	if b == 0 {
		panic("erasure: division by zero in GF(256)")
	}
	if a == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+255-int(gfLog[b])]
}

// gfInv returns the multiplicative inverse of a non-zero element.
func gfInv(a byte) byte { return gfDiv(1, a) }

// mulSlice computes dst[i] ^= c * src[i] for all i (accumulating
// multiply-add, the inner loop of encoding and decoding).
func mulSliceXor(c byte, src, dst []byte) {
	if c == 0 {
		return
	}
	logC := int(gfLog[c])
	for i, s := range src {
		if s != 0 {
			dst[i] ^= gfExp[logC+int(gfLog[s])]
		}
	}
}

// invertMatrix inverts an n×n matrix over GF(256) in place using
// Gauss–Jordan elimination, returning false if singular.
func invertMatrix(m [][]byte) bool {
	n := len(m)
	// Augment with identity.
	aug := make([][]byte, n)
	for i := range aug {
		aug[i] = make([]byte, 2*n)
		copy(aug[i], m[i])
		aug[i][n+i] = 1
	}
	for col := 0; col < n; col++ {
		pivot := -1
		for r := col; r < n; r++ {
			if aug[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return false
		}
		aug[col], aug[pivot] = aug[pivot], aug[col]
		inv := gfInv(aug[col][col])
		for j := 0; j < 2*n; j++ {
			aug[col][j] = gfMul(aug[col][j], inv)
		}
		for r := 0; r < n; r++ {
			if r == col || aug[r][col] == 0 {
				continue
			}
			f := aug[r][col]
			for j := 0; j < 2*n; j++ {
				aug[r][j] ^= gfMul(f, aug[col][j])
			}
		}
	}
	for i := range m {
		copy(m[i], aug[i][n:])
	}
	return true
}
