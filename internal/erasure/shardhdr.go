package erasure

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Every erasure shard stored on a node carries a fixed header naming the
// write that produced it. Reconstruction must only ever combine shards
// from one write: a stripe is read-modify-written as a unit, so shards
// from two different writes encode two different payloads, and joining
// them silently produces garbage that no checksum downstream would catch.
// The header makes that impossible to do by accident — the gather layer
// groups shards by (generation, write ID) and reconstructs only within
// one group.
//
//	offset  size  field
//	0       1     magic (0xE5)
//	1       1     header version (1)
//	2       8     generation, big endian
//	10      8     write ID, big endian
//
// The generation is a per-stripe counter: each read-modify-write stamps
// its shards with (highest generation observed on the stripe) + 1, so a
// reader preferring the highest complete generation always returns the
// newest settled write. The write ID is a random per-write nonce that
// disambiguates two writers who raced to the same generation — their
// shard sets stay distinct groups instead of interleaving.

const (
	shardMagic   = 0xE5
	shardVersion = 1
	// HeaderSize is the length in bytes of the shard header prepended to
	// every stored shard.
	HeaderSize = 18
)

// ErrBadShard reports a stored shard whose header is missing or corrupt.
var ErrBadShard = errors.New("erasure: malformed shard header")

// WrapShard prepends the shard header for one write (generation gen,
// write ID id) to payload, returning a fresh buffer ready to store.
func WrapShard(gen, id uint64, payload []byte) []byte {
	out := make([]byte, HeaderSize+len(payload))
	out[0] = shardMagic
	out[1] = shardVersion
	binary.BigEndian.PutUint64(out[2:], gen)
	binary.BigEndian.PutUint64(out[10:], id)
	copy(out[HeaderSize:], payload)
	return out
}

// ParseShard splits a stored shard into its header fields and payload.
// The payload aliases b; callers that outlive b must copy it.
func ParseShard(b []byte) (gen, id uint64, payload []byte, err error) {
	if len(b) < HeaderSize {
		return 0, 0, nil, fmt.Errorf("%w: %d bytes", ErrBadShard, len(b))
	}
	if b[0] != shardMagic || b[1] != shardVersion {
		return 0, 0, nil, fmt.Errorf("%w: magic %#x version %d", ErrBadShard, b[0], b[1])
	}
	return binary.BigEndian.Uint64(b[2:]), binary.BigEndian.Uint64(b[10:]), b[HeaderSize:], nil
}
