package erasure

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestShardHeaderRoundTrip(t *testing.T) {
	payload := []byte("shard payload bytes")
	wrapped := WrapShard(42, 0xdeadbeefcafef00d, payload)
	if len(wrapped) != HeaderSize+len(payload) {
		t.Fatalf("wrapped length %d, want %d", len(wrapped), HeaderSize+len(payload))
	}
	gen, id, got, err := ParseShard(wrapped)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 42 || id != 0xdeadbeefcafef00d {
		t.Fatalf("gen=%d id=%#x", gen, id)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload corrupted: %q", got)
	}
}

func TestShardHeaderEmptyPayload(t *testing.T) {
	gen, id, payload, err := ParseShard(WrapShard(1, 2, nil))
	if err != nil || gen != 1 || id != 2 || len(payload) != 0 {
		t.Fatalf("gen=%d id=%d payload=%v err=%v", gen, id, payload, err)
	}
}

func TestParseShardRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		make([]byte, HeaderSize-1),          // too short
		make([]byte, HeaderSize+4),          // zero magic
		append([]byte{shardMagic, 99}, make([]byte, 16)...), // bad version
		[]byte("plain stripe bytes from a pre-header store"),
	}
	for i, b := range cases {
		if _, _, _, err := ParseShard(b); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

// reconstructShardsCase erases lost, then asks for exactly those indices
// back and checks they match the originals byte for byte.
func reconstructShardsCase(t *testing.T, k, m, n int, lost []int) {
	t.Helper()
	c, err := NewCoder(k, m)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, n)
	rng := rand.New(rand.NewSource(int64(k*31 + m*7 + n)))
	rng.Read(data)
	shards := c.Split(data)
	parity, err := c.Encode(shards)
	if err != nil {
		t.Fatal(err)
	}
	orig := append(append([][]byte{}, shards...), parity...)
	all := append([][]byte{}, orig...)
	for _, l := range lost {
		all[l] = nil
	}
	rebuilt, err := c.ReconstructShards(all, lost)
	if err != nil {
		t.Fatal(err)
	}
	if len(rebuilt) != len(lost) {
		t.Fatalf("got %d shards, want %d", len(rebuilt), len(lost))
	}
	for i, l := range lost {
		if !bytes.Equal(rebuilt[i], orig[l]) {
			t.Fatalf("k=%d m=%d lost=%v: shard %d rebuilt wrong", k, m, lost, l)
		}
	}
}

func TestReconstructShardsSingle(t *testing.T) {
	for lost := 0; lost < 6; lost++ {
		reconstructShardsCase(t, 4, 2, 1000, []int{lost})
	}
}

func TestReconstructShardsPairs(t *testing.T) {
	for a := 0; a < 6; a++ {
		for b := a + 1; b < 6; b++ {
			reconstructShardsCase(t, 4, 2, 513, []int{a, b})
		}
	}
}

func TestReconstructShardsParityFromMixedSurvivors(t *testing.T) {
	// Lose two data shards and a parity shard at RS(4,3): rebuilding the
	// parity shard must route through the composed inverse, not Encode.
	reconstructShardsCase(t, 4, 3, 4096, []int{0, 2, 5})
}

func TestReconstructShardsPresentAliased(t *testing.T) {
	c, _ := NewCoder(3, 2)
	shards := c.Split([]byte("aliasing check payload here"))
	parity, _ := c.Encode(shards)
	all := append(append([][]byte{}, shards...), parity...)
	out, err := c.ReconstructShards(all, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if &out[0][0] != &all[1][0] || &out[1][0] != &all[4][0] {
		t.Fatal("present shards should be returned aliased")
	}
}

func TestReconstructShardsValidation(t *testing.T) {
	c, _ := NewCoder(2, 1)
	if _, err := c.ReconstructShards(make([][]byte, 2), []int{0}); err == nil {
		t.Error("wrong slot count accepted")
	}
	ok := [][]byte{{1, 2}, {3, 4}, nil}
	if _, err := c.ReconstructShards(ok, []int{7}); err == nil {
		t.Error("out-of-range want accepted")
	}
	short := [][]byte{{1, 2}, nil, nil}
	if _, err := c.ReconstructShards(short, []int{1}); err == nil {
		t.Error("too few survivors accepted")
	}
}

func TestJoinClampsLongShards(t *testing.T) {
	// A truncate that lands mid-stripe shrinks the metadata length but
	// leaves full-size shards behind; Join must clamp instead of erroring.
	c, _ := NewCoder(3, 1)
	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte(i)
	}
	shards := c.Split(data)
	got, err := c.Join(shards, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[:3000]) {
		t.Fatal("clamped join corrupted payload")
	}
	if _, err := c.Join(shards, 3*len(shards[0])+1); err == nil {
		t.Error("join past shard coverage accepted")
	}
}
