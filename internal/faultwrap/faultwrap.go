// Package faultwrap is a chaos proxy for the kvstore wire protocol: a TCP
// forwarder that sits between a MemFSS client and one store server and
// injects the failures a scavenged victim node is contractually allowed to
// produce (paper §III-A): dropped connections (before a reply and in the
// middle of a pipelined burst), truncated request writes, added latency,
// temporary unreachability, and permanent node death.
//
// Faults are drawn from a Plan whose probabilities are sampled by a seeded
// PRNG, so a given (plan, workload) pair replays the same fault mix run
// after run — deterministic enough for CI soak tests, while goroutine
// scheduling still varies the exact interleaving. Tests point a ClassSpec
// node address at Proxy.Addr() instead of the real store; memfss-bench does
// the same under its -chaos flag.
package faultwrap

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Plan configures which faults a Proxy injects and how often. Probabilities
// are per forwarded segment (one Read's worth of bytes, typically one
// command or one pipelined burst), in [0, 1]. The zero Plan injects nothing
// and the proxy is a transparent forwarder.
type Plan struct {
	// Seed drives the PRNG that samples every probability below.
	Seed int64
	// DropBeforeReply is the chance a server->client segment is discarded
	// and both sides of the connection closed before any reply byte
	// reaches the client — the "store died before answering" case.
	DropBeforeReply float64
	// DropMidReply is the chance a server->client segment is cut in half:
	// the leading bytes are forwarded, then the connection dies — the
	// mid-pipeline death that leaves a burst partially answered.
	DropMidReply float64
	// CutRequest is the chance a client->server segment is truncated
	// mid-write and the connection closed — a partial write: the server
	// sees a malformed or incomplete frame and hangs up.
	CutRequest float64
	// DelayProb is the chance a server->client segment is held for Delay
	// before forwarding — scavenging traffic contending with the tenant.
	DelayProb float64
	// Delay is the added latency applied with probability DelayProb.
	Delay time.Duration
}

// Stats counts the faults a Proxy actually injected.
type Stats struct {
	// Conns is how many client connections the proxy accepted.
	Conns int64
	// PreDrops / MidDrops / Cuts / Delays count injected faults by kind.
	PreDrops int64
	MidDrops int64
	Cuts     int64
	Delays   int64
	// Refused counts connections rejected while paused or killed.
	Refused int64
}

func (s Stats) String() string {
	return fmt.Sprintf("conns=%d pre-drops=%d mid-drops=%d cuts=%d delays=%d refused=%d",
		s.Conns, s.PreDrops, s.MidDrops, s.Cuts, s.Delays, s.Refused)
}

// Proxy forwards one listener's connections to a target address, injecting
// faults per its Plan. It is safe for concurrent use.
type Proxy struct {
	target string
	plan   Plan

	rngMu sync.Mutex
	rng   *rand.Rand

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	paused bool
	killed bool
	closed bool

	conNs    atomic.Int64
	preDrops atomic.Int64
	midDrops atomic.Int64
	cuts     atomic.Int64
	delays   atomic.Int64
	refused  atomic.Int64
	wg       sync.WaitGroup
}

// New starts a proxy on a fresh loopback port forwarding to target.
func New(target string, plan Plan) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("faultwrap: listen: %w", err)
	}
	p := &Proxy{
		target: target,
		plan:   plan,
		rng:    rand.New(rand.NewSource(plan.Seed)),
		ln:     ln,
		conns:  make(map[net.Conn]struct{}),
	}
	p.wg.Add(1)
	go p.acceptLoop(ln)
	return p, nil
}

// Addr returns the proxy's listening address; hand it to clients in place
// of the real store address.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Target returns the wrapped store's real address.
func (p *Proxy) Target() string { return p.target }

// Stats snapshots the injected-fault counters.
func (p *Proxy) Stats() Stats {
	return Stats{
		Conns:    p.conNs.Load(),
		PreDrops: p.preDrops.Load(),
		MidDrops: p.midDrops.Load(),
		Cuts:     p.cuts.Load(),
		Delays:   p.delays.Load(),
		Refused:  p.refused.Load(),
	}
}

// Pause makes the node temporarily unreachable: existing connections are
// dropped and new ones are refused until Resume.
func (p *Proxy) Pause() {
	p.mu.Lock()
	p.paused = true
	p.dropConnsLocked()
	p.mu.Unlock()
}

// Resume ends a Pause; new connections forward again.
func (p *Proxy) Resume() {
	p.mu.Lock()
	p.paused = false
	p.mu.Unlock()
}

// Kill makes the node permanently dead: every current and future
// connection is dropped. Unlike Close it keeps the accept loop running so
// dialers see an immediate reset rather than a vanished listener (both
// look the same to clients on loopback, but Kill also keeps Stats serving).
func (p *Proxy) Kill() {
	p.mu.Lock()
	p.killed = true
	p.dropConnsLocked()
	p.mu.Unlock()
}

// Killed reports whether Kill was called.
func (p *Proxy) Killed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.killed
}

// Close shuts the proxy down and waits for its goroutines.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	ln := p.ln
	p.dropConnsLocked()
	p.mu.Unlock()
	ln.Close()
	p.wg.Wait()
	return nil
}

// dropConnsLocked closes every tracked connection; callers hold p.mu.
func (p *Proxy) dropConnsLocked() {
	for c := range p.conns {
		c.Close()
		delete(p.conns, c)
	}
}

func (p *Proxy) acceptLoop(ln net.Listener) {
	defer p.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		p.mu.Lock()
		if p.closed || p.killed || p.paused {
			p.mu.Unlock()
			p.refused.Add(1)
			conn.Close()
			continue
		}
		p.mu.Unlock()
		p.conNs.Add(1)
		p.wg.Add(1)
		go p.serve(conn)
	}
}

// roll samples the seeded PRNG; one shared stream keeps the fault sequence
// a pure function of the plan seed and the order segments arrive.
func (p *Proxy) roll() float64 {
	p.rngMu.Lock()
	defer p.rngMu.Unlock()
	return p.rng.Float64()
}

// errInjected marks a connection killed on purpose, distinguishing
// injected faults from real forwarding errors inside the copy loops.
var errInjected = errors.New("faultwrap: injected fault")

func (p *Proxy) serve(client net.Conn) {
	defer p.wg.Done()
	server, err := net.DialTimeout("tcp", p.target, 5*time.Second)
	if err != nil {
		client.Close()
		return
	}
	p.mu.Lock()
	if p.closed || p.killed || p.paused {
		p.mu.Unlock()
		client.Close()
		server.Close()
		return
	}
	p.conns[client] = struct{}{}
	p.conns[server] = struct{}{}
	p.mu.Unlock()

	done := func() {
		p.mu.Lock()
		delete(p.conns, client)
		delete(p.conns, server)
		p.mu.Unlock()
		client.Close()
		server.Close()
	}
	var once sync.Once
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		p.copyLoop(server, client, p.injectRequest)
		once.Do(done)
	}()
	go func() {
		defer wg.Done()
		p.copyLoop(client, server, p.injectReply)
		once.Do(done)
	}()
	wg.Wait()
}

// copyLoop forwards segments from src to dst, letting inject mangle (or
// veto) each one. It exits on the first error in either direction.
func (p *Proxy) copyLoop(dst, src net.Conn, inject func(dst net.Conn, seg []byte) error) {
	buf := make([]byte, 64<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if ierr := inject(dst, buf[:n]); ierr != nil {
				return
			}
		}
		if err != nil {
			return
		}
	}
}

// injectReply applies the server->client fault schedule to one segment.
func (p *Proxy) injectReply(dst net.Conn, seg []byte) error {
	if d := p.plan.Delay; d > 0 && p.plan.DelayProb > 0 && p.roll() < p.plan.DelayProb {
		p.delays.Add(1)
		time.Sleep(d)
	}
	if p.plan.DropBeforeReply > 0 && p.roll() < p.plan.DropBeforeReply {
		p.preDrops.Add(1)
		return errInjected
	}
	if p.plan.DropMidReply > 0 && len(seg) > 1 && p.roll() < p.plan.DropMidReply {
		p.midDrops.Add(1)
		dst.Write(seg[:len(seg)/2]) // best effort: the point is the cut
		return errInjected
	}
	return writeAll(dst, seg)
}

// injectRequest applies the client->server fault schedule to one segment.
func (p *Proxy) injectRequest(dst net.Conn, seg []byte) error {
	if p.plan.CutRequest > 0 && len(seg) > 1 && p.roll() < p.plan.CutRequest {
		p.cuts.Add(1)
		dst.Write(seg[:len(seg)/2])
		return errInjected
	}
	return writeAll(dst, seg)
}

func writeAll(dst net.Conn, b []byte) error {
	if _, err := dst.Write(b); err != nil {
		return err
	}
	return nil
}

// WrapAll starts one proxy per target address with per-proxy seeds derived
// from plan.Seed (seed+index), returning the proxies in input order. On
// error every already-started proxy is closed.
func WrapAll(targets []string, plan Plan) ([]*Proxy, error) {
	out := make([]*Proxy, 0, len(targets))
	for i, target := range targets {
		pl := plan
		pl.Seed = plan.Seed + int64(i)
		p, err := New(target, pl)
		if err != nil {
			for _, q := range out {
				q.Close()
			}
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// TotalStats sums the stats of several proxies.
func TotalStats(proxies []*Proxy) Stats {
	var t Stats
	for _, p := range proxies {
		s := p.Stats()
		t.Conns += s.Conns
		t.PreDrops += s.PreDrops
		t.MidDrops += s.MidDrops
		t.Cuts += s.Cuts
		t.Delays += s.Delays
		t.Refused += s.Refused
	}
	return t
}
