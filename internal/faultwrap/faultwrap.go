// Package faultwrap is a chaos proxy for the kvstore wire protocol: a TCP
// forwarder that sits between a MemFSS client and one store server and
// injects the failures a scavenged victim node is contractually allowed to
// produce (paper §III-A): dropped connections (before a reply and in the
// middle of a pipelined burst), truncated request writes, added latency,
// temporary unreachability, and permanent node death.
//
// Faults are drawn from a Plan whose probabilities are sampled by a seeded
// PRNG, so a given (plan, workload) pair replays the same fault mix run
// after run — deterministic enough for CI soak tests, while goroutine
// scheduling still varies the exact interleaving. Tests point a ClassSpec
// node address at Proxy.Addr() instead of the real store; memfss-bench does
// the same under its -chaos and -scenario flags.
//
// Plans are per direction (DirPlan): the client->server request stream and
// the server->client reply stream carry independent fault schedules, which
// is what lets a scenario express *asymmetric* partitions — requests
// blackholed while replies would flow, or replies cut while the server
// keeps applying writes it can never acknowledge. DropVerbs drops request
// segments carrying specific wire commands, so a scenario can partition
// the failure detector's PING probes away from a node that keeps serving
// data — the split-brain case for revocation fencing. SetPlan swaps the
// whole schedule at runtime (existing connections included), which is how
// the scenario runner ramps a gray failure or heals a partition mid-run.
package faultwrap

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// DirPlan is one direction's fault schedule. Probabilities are per
// forwarded segment (one Read's worth of bytes, typically one command or
// one pipelined burst), in [0, 1]. The zero DirPlan injects nothing.
type DirPlan struct {
	// Drop is the chance a segment is discarded and both sides of the
	// connection closed — the "peer died" reset-style failure. Clients see
	// it immediately as a broken connection.
	Drop float64
	// Discard is the chance a segment is silently swallowed while the
	// connection stays open — a blackhole. The sender learns nothing; the
	// receiver never sees the bytes. This is the asymmetric-partition
	// primitive: the side waiting on a response blocks until its deadline,
	// which is exactly how a real one-way partition presents.
	Discard float64
	// Cut is the chance a segment is truncated mid-write and the
	// connection closed — the partial frame that leaves a pipelined burst
	// half-answered or a request half-parsed.
	Cut float64
	// DelayProb is the chance a segment is held for Delay (plus a uniform
	// draw from [0, Jitter)) before forwarding — a slow NIC, a contended
	// victim, scavenging traffic behind tenant bursts. Delay without
	// failure is the gray-failure primitive: the node stays Up, just slow.
	DelayProb float64
	Delay     time.Duration
	Jitter    time.Duration
}

func (d DirPlan) active() bool {
	return d.Drop > 0 || d.Discard > 0 || d.Cut > 0 || (d.DelayProb > 0 && (d.Delay > 0 || d.Jitter > 0))
}

// Plan configures which faults a Proxy injects and how often.
//
// The legacy top-level fields (DropBeforeReply, DropMidReply, CutRequest,
// DelayProb/Delay) predate per-direction plans and are folded into
// Reply/Request when the plan is installed, so existing seeded soaks keep
// their exact fault sequences. New code should set Request/Reply directly.
type Plan struct {
	// Seed drives the PRNG that samples every probability below. SetPlan
	// keeps the proxy's PRNG stream, so the fault sequence stays a pure
	// function of the original seed and segment arrival order even across
	// plan swaps.
	Seed int64

	// DropBeforeReply is the chance a server->client segment is discarded
	// and the connection reset before any reply byte reaches the client.
	// Legacy alias for Reply.Drop.
	DropBeforeReply float64
	// DropMidReply is the chance a server->client segment is cut in half.
	// Legacy alias for Reply.Cut.
	DropMidReply float64
	// CutRequest is the chance a client->server segment is truncated.
	// Legacy alias for Request.Cut.
	CutRequest float64
	// DelayProb/Delay hold a server->client segment before forwarding.
	// Legacy aliases for Reply.DelayProb/Reply.Delay.
	DelayProb float64
	Delay     time.Duration

	// Request is the client->server fault schedule.
	Request DirPlan
	// Reply is the server->client fault schedule.
	Reply DirPlan
	// DropVerbs lists wire commands (e.g. "PING") whose request segments
	// are dropped and the carrying connection reset, regardless of
	// probability. Matching is per segment against the bulk-string framing
	// of the verb, so a single-command write (the probe path) always
	// matches; a verb split across segments may escape — acceptable for a
	// chaos tool. This partitions one *kind* of traffic: probes can fail
	// 100% while data connections keep serving.
	DropVerbs []string
}

// normalized folds the legacy aliases into the per-direction plans and
// pre-compiles the verb matchers.
func (p Plan) normalized() *compiledPlan {
	c := &compiledPlan{plan: p}
	c.plan.Reply.Drop += p.DropBeforeReply
	c.plan.Reply.Cut += p.DropMidReply
	c.plan.Request.Cut += p.CutRequest
	if p.DelayProb > 0 && p.Delay > 0 {
		c.plan.Reply.DelayProb += p.DelayProb
		if c.plan.Reply.Delay == 0 {
			c.plan.Reply.Delay = p.Delay
		}
	}
	for _, v := range p.DropVerbs {
		// A verb on the wire is a bulk string: $<len>\r\n<VERB>\r\n.
		c.verbs = append(c.verbs, []byte(fmt.Sprintf("$%d\r\n%s\r\n", len(v), v)))
	}
	return c
}

type compiledPlan struct {
	plan  Plan
	verbs [][]byte
}

// Stats counts the faults a Proxy actually injected.
type Stats struct {
	// Conns is how many client connections the proxy accepted.
	Conns int64
	// PreDrops / MidDrops / Cuts / Delays count injected reply-direction
	// faults by kind (reset drops, mid-segment cuts, added latency).
	PreDrops int64
	MidDrops int64
	Cuts     int64
	Delays   int64
	// Discards counts blackholed segments (either direction): swallowed
	// silently with the connection left open.
	Discards int64
	// VerbDrops counts request segments dropped by a DropVerbs match.
	VerbDrops int64
	// Refused counts connections rejected while paused or killed.
	Refused int64
	// PlanSwaps counts runtime SetPlan calls.
	PlanSwaps int64
}

func (s Stats) String() string {
	return fmt.Sprintf("conns=%d pre-drops=%d mid-drops=%d cuts=%d delays=%d discards=%d verb-drops=%d refused=%d",
		s.Conns, s.PreDrops, s.MidDrops, s.Cuts, s.Delays, s.Discards, s.VerbDrops, s.Refused)
}

// Proxy forwards one listener's connections to a target address, injecting
// faults per its Plan. It is safe for concurrent use.
type Proxy struct {
	target string
	plan   atomic.Pointer[compiledPlan]

	rngMu sync.Mutex
	rng   *rand.Rand

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	paused bool
	killed bool
	closed bool

	conNs     atomic.Int64
	preDrops  atomic.Int64
	midDrops  atomic.Int64
	cuts      atomic.Int64
	delays    atomic.Int64
	discards  atomic.Int64
	verbDrops atomic.Int64
	refused   atomic.Int64
	planSwaps atomic.Int64
	wg        sync.WaitGroup
}

// New starts a proxy on a fresh loopback port forwarding to target.
func New(target string, plan Plan) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("faultwrap: listen: %w", err)
	}
	p := &Proxy{
		target: target,
		rng:    rand.New(rand.NewSource(plan.Seed)),
		ln:     ln,
		conns:  make(map[net.Conn]struct{}),
	}
	p.plan.Store(plan.normalized())
	p.wg.Add(1)
	go p.acceptLoop(ln)
	return p, nil
}

// Addr returns the proxy's listening address; hand it to clients in place
// of the real store address.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Target returns the wrapped store's real address.
func (p *Proxy) Target() string { return p.target }

// Plan returns the currently installed plan (as given; legacy aliases are
// not folded back).
func (p *Proxy) Plan() Plan { return p.plan.Load().plan }

// SetPlan swaps the fault schedule at runtime. In-flight connections pick
// up the new plan on their next forwarded segment — a partition can open
// or heal under live traffic, a latency ramp can tighten mid-burst. The
// PRNG stream is kept, so the overall fault sequence remains a function of
// the original seed and segment order.
func (p *Proxy) SetPlan(plan Plan) {
	p.planSwaps.Add(1)
	p.plan.Store(plan.normalized())
}

// Stats snapshots the injected-fault counters.
func (p *Proxy) Stats() Stats {
	return Stats{
		Conns:     p.conNs.Load(),
		PreDrops:  p.preDrops.Load(),
		MidDrops:  p.midDrops.Load(),
		Cuts:      p.cuts.Load(),
		Delays:    p.delays.Load(),
		Discards:  p.discards.Load(),
		VerbDrops: p.verbDrops.Load(),
		Refused:   p.refused.Load(),
		PlanSwaps: p.planSwaps.Load(),
	}
}

// Pause makes the node temporarily unreachable: existing connections are
// dropped and new ones are refused until Resume — the full (symmetric)
// partition primitive.
func (p *Proxy) Pause() {
	p.mu.Lock()
	p.paused = true
	p.dropConnsLocked()
	p.mu.Unlock()
}

// Resume ends a Pause; new connections forward again.
func (p *Proxy) Resume() {
	p.mu.Lock()
	p.paused = false
	p.mu.Unlock()
}

// Paused reports whether the proxy is currently refusing connections due
// to Pause.
func (p *Proxy) Paused() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.paused
}

// Kill makes the node permanently dead: every current and future
// connection is dropped. Unlike Close it keeps the accept loop running so
// dialers see an immediate reset rather than a vanished listener (both
// look the same to clients on loopback, but Kill also keeps Stats serving).
func (p *Proxy) Kill() {
	p.mu.Lock()
	p.killed = true
	p.dropConnsLocked()
	p.mu.Unlock()
}

// Killed reports whether Kill was called.
func (p *Proxy) Killed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.killed
}

// Close shuts the proxy down and waits for its goroutines.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	ln := p.ln
	p.dropConnsLocked()
	p.mu.Unlock()
	ln.Close()
	p.wg.Wait()
	return nil
}

// dropConnsLocked closes every tracked connection; callers hold p.mu.
func (p *Proxy) dropConnsLocked() {
	for c := range p.conns {
		c.Close()
		delete(p.conns, c)
	}
}

func (p *Proxy) acceptLoop(ln net.Listener) {
	defer p.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		p.mu.Lock()
		if p.closed || p.killed || p.paused {
			p.mu.Unlock()
			p.refused.Add(1)
			conn.Close()
			continue
		}
		p.mu.Unlock()
		p.conNs.Add(1)
		p.wg.Add(1)
		go p.serve(conn)
	}
}

// roll samples the seeded PRNG; one shared stream keeps the fault sequence
// a pure function of the plan seed and the order segments arrive.
func (p *Proxy) roll() float64 {
	p.rngMu.Lock()
	defer p.rngMu.Unlock()
	return p.rng.Float64()
}

// jitter draws a uniform duration from [0, max).
func (p *Proxy) jitter(max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	p.rngMu.Lock()
	defer p.rngMu.Unlock()
	return time.Duration(p.rng.Int63n(int64(max)))
}

// errInjected marks a connection killed on purpose, distinguishing
// injected faults from real forwarding errors inside the copy loops.
var errInjected = errors.New("faultwrap: injected fault")

func (p *Proxy) serve(client net.Conn) {
	defer p.wg.Done()
	server, err := net.DialTimeout("tcp", p.target, 5*time.Second)
	if err != nil {
		client.Close()
		return
	}
	p.mu.Lock()
	if p.closed || p.killed || p.paused {
		p.mu.Unlock()
		client.Close()
		server.Close()
		return
	}
	p.conns[client] = struct{}{}
	p.conns[server] = struct{}{}
	p.mu.Unlock()

	done := func() {
		p.mu.Lock()
		delete(p.conns, client)
		delete(p.conns, server)
		p.mu.Unlock()
		client.Close()
		server.Close()
	}
	var once sync.Once
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		p.copyLoop(server, client, p.injectRequest)
		once.Do(done)
	}()
	go func() {
		defer wg.Done()
		p.copyLoop(client, server, p.injectReply)
		once.Do(done)
	}()
	wg.Wait()
}

// copyLoop forwards segments from src to dst, letting inject mangle (or
// veto) each one. It exits on the first error in either direction.
func (p *Proxy) copyLoop(dst, src net.Conn, inject func(dst net.Conn, seg []byte) error) {
	buf := make([]byte, 64<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if ierr := inject(dst, buf[:n]); ierr != nil {
				return
			}
		}
		if err != nil {
			return
		}
	}
}

// injectDir applies one direction's schedule to a segment. The sampling
// order (delay, drop, discard, cut) is fixed: it decides which faults
// consume PRNG rolls, so changing it would reshuffle every seeded soak.
func (p *Proxy) injectDir(dst net.Conn, seg []byte, d DirPlan, drops, cuts *atomic.Int64) error {
	if d.DelayProb > 0 && (d.Delay > 0 || d.Jitter > 0) && p.roll() < d.DelayProb {
		p.delays.Add(1)
		time.Sleep(d.Delay + p.jitter(d.Jitter))
	}
	if d.Drop > 0 && p.roll() < d.Drop {
		drops.Add(1)
		return errInjected
	}
	if d.Discard > 0 && p.roll() < d.Discard {
		p.discards.Add(1)
		return nil // blackhole: swallow, keep the connection
	}
	if d.Cut > 0 && len(seg) > 1 && p.roll() < d.Cut {
		cuts.Add(1)
		dst.Write(seg[:len(seg)/2]) // best effort: the point is the cut
		return errInjected
	}
	return writeAll(dst, seg)
}

// injectReply applies the server->client fault schedule to one segment.
func (p *Proxy) injectReply(dst net.Conn, seg []byte) error {
	return p.injectDir(dst, seg, p.plan.Load().plan.Reply, &p.preDrops, &p.midDrops)
}

// injectRequest applies the client->server fault schedule to one segment.
func (p *Proxy) injectRequest(dst net.Conn, seg []byte) error {
	pl := p.plan.Load()
	for _, v := range pl.verbs {
		if bytes.Contains(seg, v) {
			p.verbDrops.Add(1)
			return errInjected
		}
	}
	return p.injectDir(dst, seg, pl.plan.Request, &p.preDrops, &p.cuts)
}

func writeAll(dst net.Conn, b []byte) error {
	if _, err := dst.Write(b); err != nil {
		return err
	}
	return nil
}

// WrapAll starts one proxy per target address with per-proxy seeds derived
// from plan.Seed (seed+index), returning the proxies in input order. On
// error every already-started proxy is closed.
func WrapAll(targets []string, plan Plan) ([]*Proxy, error) {
	out := make([]*Proxy, 0, len(targets))
	for i, target := range targets {
		pl := plan
		pl.Seed = plan.Seed + int64(i)
		p, err := New(target, pl)
		if err != nil {
			for _, q := range out {
				q.Close()
			}
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// KillGroup kills a set of proxies at once — the correlated rack-scale
// failure primitive: every node sharing the failure domain dies in the
// same instant, not one by one.
func KillGroup(proxies ...*Proxy) {
	for _, p := range proxies {
		p.Kill()
	}
}

// PauseGroup partitions a set of proxies at once (correlated but
// recoverable — a rack losing its uplink). Undo with ResumeGroup.
func PauseGroup(proxies ...*Proxy) {
	for _, p := range proxies {
		p.Pause()
	}
}

// ResumeGroup heals a PauseGroup partition.
func ResumeGroup(proxies ...*Proxy) {
	for _, p := range proxies {
		p.Resume()
	}
}

// TotalStats sums the stats of several proxies.
func TotalStats(proxies []*Proxy) Stats {
	var t Stats
	for _, p := range proxies {
		s := p.Stats()
		t.Conns += s.Conns
		t.PreDrops += s.PreDrops
		t.MidDrops += s.MidDrops
		t.Cuts += s.Cuts
		t.Delays += s.Delays
		t.Discards += s.Discards
		t.VerbDrops += s.VerbDrops
		t.Refused += s.Refused
		t.PlanSwaps += s.PlanSwaps
	}
	return t
}
