package faultwrap

import (
	"testing"
	"time"

	"memfss/internal/kvstore"
)

// startStore brings up one real kvstore server and returns its address.
func startStore(t *testing.T) string {
	t.Helper()
	srv := kvstore.NewServer(kvstore.NewStore(0), "")
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr
}

func TestTransparentForwarding(t *testing.T) {
	p, err := New(startStore(t), Plan{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	cli := kvstore.Dial(p.Addr(), kvstore.DialOptions{Timeout: 2 * time.Second})
	defer cli.Close()
	if err := cli.Set("k", []byte("v")); err != nil {
		t.Fatalf("set through zero plan: %v", err)
	}
	got, ok, err := cli.Get("k")
	if err != nil || !ok || string(got) != "v" {
		t.Fatalf("get through zero plan: %q %v %v", got, ok, err)
	}
	if s := p.Stats(); s.Conns == 0 || s.PreDrops+s.MidDrops+s.Cuts != 0 {
		t.Fatalf("zero plan injected faults: %v", s)
	}
}

func TestInjectedDropsAreSurvivable(t *testing.T) {
	p, err := New(startStore(t), Plan{
		Seed:            1,
		DropBeforeReply: 0.3,
		DropMidReply:    0.2,
		CutRequest:      0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	cli := kvstore.Dial(p.Addr(), kvstore.DialOptions{
		Timeout:     2 * time.Second,
		MaxAttempts: 8,
		BaseDelay:   time.Millisecond,
		MaxDelay:    5 * time.Millisecond,
	})
	defer cli.Close()
	// With 8 attempts per op, a 60% combined per-attempt fault rate still
	// converges; the retry layer must absorb every injected drop.
	for i := 0; i < 50; i++ {
		if err := cli.Set("k", []byte("v")); err != nil {
			t.Fatalf("set %d under faults: %v", i, err)
		}
	}
	s := p.Stats()
	if s.PreDrops+s.MidDrops+s.Cuts == 0 {
		t.Fatalf("plan injected nothing over 50 ops: %v", s)
	}
}

func TestSeedDeterminism(t *testing.T) {
	// The same seed must sample the same fault decision sequence.
	a := New0(t, 42)
	b := New0(t, 42)
	c := New0(t, 43)
	same, diff := 0, 0
	for i := 0; i < 100; i++ {
		ra, rb, rc := a.roll(), b.roll(), c.roll()
		if ra == rb {
			same++
		}
		if ra != rc {
			diff++
		}
	}
	if same != 100 {
		t.Fatalf("same-seed rolls diverged: %d/100 equal", same)
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical rolls")
	}
}

// New0 builds a proxy without a live target, for PRNG-only tests.
func New0(t *testing.T, seed int64) *Proxy {
	t.Helper()
	p, err := New("127.0.0.1:1", Plan{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func TestPauseResumeAndKill(t *testing.T) {
	p, err := New(startStore(t), Plan{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	opts := kvstore.DialOptions{Timeout: time.Second, MaxAttempts: 2, BaseDelay: time.Millisecond}
	cli := kvstore.Dial(p.Addr(), opts)
	defer cli.Close()
	if err := cli.Ping(); err != nil {
		t.Fatalf("ping before pause: %v", err)
	}
	p.Pause()
	if err := cli.Ping(); err == nil {
		t.Fatal("ping succeeded while paused")
	}
	p.Resume()
	if err := cli.Ping(); err != nil {
		t.Fatalf("ping after resume: %v", err)
	}
	p.Kill()
	if err := cli.Ping(); err == nil {
		t.Fatal("ping succeeded after kill")
	}
	if !p.Killed() {
		t.Fatal("Killed() false after Kill")
	}
	p.Resume() // resume must not revive a killed node
	if err := cli.Ping(); err == nil {
		t.Fatal("resume revived a killed node")
	}
	if p.Stats().Refused == 0 {
		t.Fatal("no refused connections counted")
	}
}

func TestWrapAll(t *testing.T) {
	targets := []string{startStore(t), startStore(t), startStore(t)}
	proxies, err := WrapAll(targets, Plan{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, p := range proxies {
			p.Close()
		}
	})
	if len(proxies) != 3 {
		t.Fatalf("got %d proxies", len(proxies))
	}
	for i, p := range proxies {
		if p.Target() != targets[i] {
			t.Fatalf("proxy %d target %s, want %s", i, p.Target(), targets[i])
		}
		cli := kvstore.Dial(p.Addr(), kvstore.DialOptions{Timeout: time.Second})
		if err := cli.Ping(); err != nil {
			t.Fatalf("proxy %d unreachable: %v", i, err)
		}
		cli.Close()
	}
	if TotalStats(proxies).Conns != 3 {
		t.Fatalf("total conns = %d, want 3", TotalStats(proxies).Conns)
	}
}
