package faultwrap

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"memfss/internal/kvstore"
)

// startStore brings up one real kvstore server and returns its address.
func startStore(t *testing.T) string {
	t.Helper()
	srv := kvstore.NewServer(kvstore.NewStore(0), "")
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr
}

func TestTransparentForwarding(t *testing.T) {
	p, err := New(startStore(t), Plan{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	cli := kvstore.Dial(p.Addr(), kvstore.DialOptions{Timeout: 2 * time.Second})
	defer cli.Close()
	if err := cli.Set("k", []byte("v")); err != nil {
		t.Fatalf("set through zero plan: %v", err)
	}
	got, ok, err := cli.Get("k")
	if err != nil || !ok || string(got) != "v" {
		t.Fatalf("get through zero plan: %q %v %v", got, ok, err)
	}
	if s := p.Stats(); s.Conns == 0 || s.PreDrops+s.MidDrops+s.Cuts != 0 {
		t.Fatalf("zero plan injected faults: %v", s)
	}
}

func TestInjectedDropsAreSurvivable(t *testing.T) {
	p, err := New(startStore(t), Plan{
		Seed:            1,
		DropBeforeReply: 0.3,
		DropMidReply:    0.2,
		CutRequest:      0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	cli := kvstore.Dial(p.Addr(), kvstore.DialOptions{
		Timeout:     2 * time.Second,
		MaxAttempts: 8,
		BaseDelay:   time.Millisecond,
		MaxDelay:    5 * time.Millisecond,
	})
	defer cli.Close()
	// With 8 attempts per op, a 60% combined per-attempt fault rate still
	// converges; the retry layer must absorb every injected drop.
	for i := 0; i < 50; i++ {
		if err := cli.Set("k", []byte("v")); err != nil {
			t.Fatalf("set %d under faults: %v", i, err)
		}
	}
	s := p.Stats()
	if s.PreDrops+s.MidDrops+s.Cuts == 0 {
		t.Fatalf("plan injected nothing over 50 ops: %v", s)
	}
}

func TestSeedDeterminism(t *testing.T) {
	// The same seed must sample the same fault decision sequence.
	a := New0(t, 42)
	b := New0(t, 42)
	c := New0(t, 43)
	same, diff := 0, 0
	for i := 0; i < 100; i++ {
		ra, rb, rc := a.roll(), b.roll(), c.roll()
		if ra == rb {
			same++
		}
		if ra != rc {
			diff++
		}
	}
	if same != 100 {
		t.Fatalf("same-seed rolls diverged: %d/100 equal", same)
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical rolls")
	}
}

// New0 builds a proxy without a live target, for PRNG-only tests.
func New0(t *testing.T, seed int64) *Proxy {
	t.Helper()
	p, err := New("127.0.0.1:1", Plan{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func TestPauseResumeAndKill(t *testing.T) {
	p, err := New(startStore(t), Plan{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	opts := kvstore.DialOptions{Timeout: time.Second, MaxAttempts: 2, BaseDelay: time.Millisecond}
	cli := kvstore.Dial(p.Addr(), opts)
	defer cli.Close()
	if err := cli.Ping(); err != nil {
		t.Fatalf("ping before pause: %v", err)
	}
	p.Pause()
	if err := cli.Ping(); err == nil {
		t.Fatal("ping succeeded while paused")
	}
	p.Resume()
	if err := cli.Ping(); err != nil {
		t.Fatalf("ping after resume: %v", err)
	}
	p.Kill()
	if err := cli.Ping(); err == nil {
		t.Fatal("ping succeeded after kill")
	}
	if !p.Killed() {
		t.Fatal("Killed() false after Kill")
	}
	p.Resume() // resume must not revive a killed node
	if err := cli.Ping(); err == nil {
		t.Fatal("resume revived a killed node")
	}
	if p.Stats().Refused == 0 {
		t.Fatal("no refused connections counted")
	}
}

func TestWrapAll(t *testing.T) {
	targets := []string{startStore(t), startStore(t), startStore(t)}
	proxies, err := WrapAll(targets, Plan{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, p := range proxies {
			p.Close()
		}
	})
	if len(proxies) != 3 {
		t.Fatalf("got %d proxies", len(proxies))
	}
	for i, p := range proxies {
		if p.Target() != targets[i] {
			t.Fatalf("proxy %d target %s, want %s", i, p.Target(), targets[i])
		}
		cli := kvstore.Dial(p.Addr(), kvstore.DialOptions{Timeout: time.Second})
		if err := cli.Ping(); err != nil {
			t.Fatalf("proxy %d unreachable: %v", i, err)
		}
		cli.Close()
	}
	if TotalStats(proxies).Conns != 3 {
		t.Fatalf("total conns = %d, want 3", TotalStats(proxies).Conns)
	}
}

func TestOneWayReplyDrop(t *testing.T) {
	// Reply direction drops everything; request direction is clean. The
	// server must still APPLY the write (requests flow) even though the
	// client never sees the ack (replies dropped) — the asymmetric case a
	// single whole-node fault mode cannot express.
	p, err := New(startStore(t), Plan{Reply: DirPlan{Drop: 1}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	cli := kvstore.Dial(p.Addr(), kvstore.DialOptions{Timeout: time.Second, MaxAttempts: 1})
	defer cli.Close()
	if err := cli.Set("k", []byte("v")); err == nil {
		t.Fatal("set acked despite total reply drop")
	}
	if p.Stats().PreDrops == 0 {
		t.Fatal("no reply drops counted")
	}
	p.SetPlan(Plan{}) // heal the partition
	got, ok, err := cli.Get("k")
	if err != nil || !ok || string(got) != "v" {
		t.Fatalf("write did not reach server through one-way partition: %q %v %v", got, ok, err)
	}
}

func TestOneWayRequestBlackhole(t *testing.T) {
	// Request direction blackholed: the client's write vanishes silently
	// (no reset — it blocks until its deadline) and the server never sees
	// it. The connection stays open, as in a real one-way partition.
	p, err := New(startStore(t), Plan{Request: DirPlan{Discard: 1}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	cli := kvstore.Dial(p.Addr(), kvstore.DialOptions{Timeout: 300 * time.Millisecond, MaxAttempts: 1})
	defer cli.Close()
	if err := cli.Set("k", []byte("v")); err == nil {
		t.Fatal("set acked despite request blackhole")
	}
	if p.Stats().Discards == 0 {
		t.Fatal("no discards counted")
	}
	p.SetPlan(Plan{})
	_, ok, err := cli.Get("k")
	if err != nil {
		t.Fatalf("get after heal: %v", err)
	}
	if ok {
		t.Fatal("blackholed write reached the server")
	}
}

func TestSetPlanMidConnection(t *testing.T) {
	// A plan swap must take effect on connections that are already
	// established: the scenario runner opens a partition, then heals it,
	// under a live client pool.
	p, err := New(startStore(t), Plan{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	cli := kvstore.Dial(p.Addr(), kvstore.DialOptions{Timeout: time.Second, MaxAttempts: 1})
	defer cli.Close()
	if err := cli.Set("a", []byte("1")); err != nil {
		t.Fatalf("set before swap: %v", err)
	}
	p.SetPlan(Plan{Reply: DirPlan{Drop: 1}})
	if err := cli.Set("b", []byte("2")); err == nil {
		t.Fatal("set succeeded through dropped replies after swap")
	}
	p.SetPlan(Plan{})
	if err := cli.Set("c", []byte("3")); err != nil {
		t.Fatalf("set after heal swap: %v", err)
	}
	if swaps := p.Stats().PlanSwaps; swaps != 2 {
		t.Fatalf("PlanSwaps = %d, want 2", swaps)
	}
}

func TestDropVerbsPartitionsProbes(t *testing.T) {
	// The split-brain primitive: PING probes are dropped 100% while data
	// commands on the same proxy keep serving. The failure detector will
	// declare the node Down while clients still read and write it.
	p, err := New(startStore(t), Plan{DropVerbs: []string{"PING"}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	cli := kvstore.Dial(p.Addr(), kvstore.DialOptions{Timeout: time.Second, MaxAttempts: 2, BaseDelay: time.Millisecond})
	defer cli.Close()
	if err := cli.PingOnce(); err == nil {
		t.Fatal("probe got through a PING verb drop")
	}
	if err := cli.Set("k", []byte("v")); err != nil {
		t.Fatalf("data write failed under probe-only partition: %v", err)
	}
	got, ok, err := cli.Get("k")
	if err != nil || !ok || string(got) != "v" {
		t.Fatalf("data read failed under probe-only partition: %q %v %v", got, ok, err)
	}
	if p.Stats().VerbDrops == 0 {
		t.Fatal("no verb drops counted")
	}
	p.SetPlan(Plan{})
	if err := cli.PingOnce(); err != nil {
		t.Fatalf("probe after heal: %v", err)
	}
}

func TestKillGroupCorrelatedFailure(t *testing.T) {
	// Rack-scale death: every proxy in the group dies in the same
	// instant; nodes outside the failure domain keep serving.
	targets := []string{startStore(t), startStore(t), startStore(t)}
	proxies, err := WrapAll(targets, Plan{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, p := range proxies {
			p.Close()
		}
	})
	opts := kvstore.DialOptions{Timeout: time.Second, MaxAttempts: 1}
	KillGroup(proxies[0], proxies[1])
	for i := 0; i < 2; i++ {
		cli := kvstore.Dial(proxies[i].Addr(), opts)
		if err := cli.Ping(); err == nil {
			t.Fatalf("proxy %d alive after group kill", i)
		}
		cli.Close()
		if !proxies[i].Killed() {
			t.Fatalf("proxy %d Killed() false", i)
		}
	}
	cli := kvstore.Dial(proxies[2].Addr(), opts)
	defer cli.Close()
	if err := cli.Ping(); err != nil {
		t.Fatalf("survivor unreachable after group kill: %v", err)
	}
}

func TestPauseGroupResumeGroup(t *testing.T) {
	targets := []string{startStore(t), startStore(t)}
	proxies, err := WrapAll(targets, Plan{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, p := range proxies {
			p.Close()
		}
	})
	opts := kvstore.DialOptions{Timeout: time.Second, MaxAttempts: 1}
	PauseGroup(proxies...)
	for i, p := range proxies {
		cli := kvstore.Dial(p.Addr(), opts)
		if err := cli.Ping(); err == nil {
			t.Fatalf("proxy %d reachable while group-paused", i)
		}
		cli.Close()
	}
	ResumeGroup(proxies...)
	for i, p := range proxies {
		cli := kvstore.Dial(p.Addr(), opts)
		if err := cli.Ping(); err != nil {
			t.Fatalf("proxy %d unreachable after group resume: %v", i, err)
		}
		cli.Close()
	}
}

func TestSetPlanRaceHammer(t *testing.T) {
	// Race-detector exercise: concurrent clients push traffic while other
	// goroutines hammer SetPlan / Pause / Resume / Stats. No assertion
	// beyond "does not race or deadlock"; ops are allowed to fail.
	p, err := New(startStore(t), Plan{Seed: 99, DropBeforeReply: 0.2, CutRequest: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cli := kvstore.Dial(p.Addr(), kvstore.DialOptions{
				Timeout: 200 * time.Millisecond, MaxAttempts: 2, BaseDelay: time.Millisecond,
			})
			defer cli.Close()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				cli.Set(fmt.Sprintf("w%d-%d", w, i), []byte("v")) // errors expected
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		plans := []Plan{
			{Reply: DirPlan{Drop: 0.5}},
			{Request: DirPlan{Discard: 0.3}},
			{DropVerbs: []string{"PING"}},
			{Reply: DirPlan{DelayProb: 1, Delay: time.Millisecond, Jitter: time.Millisecond}},
			{},
		}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			p.SetPlan(plans[i%len(plans)])
			if i%7 == 0 {
				p.Pause()
				p.Resume()
			}
			p.Stats()
			time.Sleep(time.Millisecond)
		}
	}()
	time.Sleep(400 * time.Millisecond)
	close(stop)
	wg.Wait()
}
