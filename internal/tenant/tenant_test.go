package tenant

import (
	"math"
	"testing"

	"memfss/internal/cluster"
	"memfss/internal/sim"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-6*math.Max(1, math.Abs(b)) }

func tenantCluster(t *testing.T, n int) (*sim.Engine, *cluster.Cluster, []*cluster.Node) {
	t.Helper()
	var e sim.Engine
	c := cluster.New(&e)
	return &e, c, c.AddNodes("victim", n, cluster.DAS5)
}

func runBench(t *testing.T, e *sim.Engine, c *cluster.Cluster, nodes []*cluster.Node, b Benchmark, opts Options) float64 {
	t.Helper()
	r, err := NewRunner(e, c, nodes, b, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if !r.Done() {
		t.Fatalf("benchmark %s did not finish", b.Name)
	}
	return r.Runtime()
}

func TestRunnerValidation(t *testing.T) {
	e, c, nodes := tenantCluster(t, 2)
	if _, err := NewRunner(nil, c, nodes, Benchmark{Phases: []Phase{{}}}, Options{}); err == nil {
		t.Error("nil engine accepted")
	}
	if _, err := NewRunner(e, c, nil, Benchmark{Phases: []Phase{{}}}, Options{}); err == nil {
		t.Error("no nodes accepted")
	}
	if _, err := NewRunner(e, c, nodes, Benchmark{Name: "empty"}, Options{}); err == nil {
		t.Error("phaseless benchmark accepted")
	}
	r, _ := NewRunner(e, c, nodes, Benchmark{Phases: []Phase{{CPUSeconds: 1}}}, Options{})
	r.Start()
	if err := r.Start(); err == nil {
		t.Error("double start accepted")
	}
}

func TestCPUBoundPhaseRuntime(t *testing.T) {
	e, c, nodes := tenantCluster(t, 2)
	b := Benchmark{Name: "cpu", Phases: []Phase{{Name: "p", CPUSeconds: 30}}}
	got := runBench(t, e, c, nodes, b, Options{})
	// 16 tasks on 16 cores per node: each core does 30s of work.
	if !almost(got, 30) {
		t.Fatalf("runtime %v, want 30", got)
	}
}

func TestPhasesAreSequential(t *testing.T) {
	e, c, nodes := tenantCluster(t, 1)
	b := Benchmark{Name: "twophase", Phases: []Phase{
		{Name: "a", CPUSeconds: 10},
		{Name: "b", CPUSeconds: 5},
	}}
	if got := runBench(t, e, c, nodes, b, Options{}); !almost(got, 15) {
		t.Fatalf("runtime %v, want 15", got)
	}
}

func TestMemBWBoundPhase(t *testing.T) {
	e, c, nodes := tenantCluster(t, 1)
	b := Benchmark{Name: "stream", Phases: []Phase{{Name: "s", MemBWBytes: 400e9}}}
	// 400 GB at 40 GB/s.
	if got := runBench(t, e, c, nodes, b, Options{}); !almost(got, 10) {
		t.Fatalf("runtime %v, want 10", got)
	}
}

func TestNetBoundPhase(t *testing.T) {
	e, c, nodes := tenantCluster(t, 4)
	b := Benchmark{Name: "beff", Phases: []Phase{{Name: "ring", NetBytes: 30e9}}}
	// Ring: each node sends 30 GB at 3 GB/s egress (ingress likewise).
	if got := runBench(t, e, c, nodes, b, Options{}); !almost(got, 10) {
		t.Fatalf("runtime %v, want 10", got)
	}
}

func TestLatencySensitivitySlowsUnderRequestLoad(t *testing.T) {
	b := Benchmark{Name: "lat", Phases: []Phase{{Name: "p", CPUSeconds: 10, LatencySensitivity: 0.2}}}

	e1, c1, n1 := tenantCluster(t, 1)
	alone := runBench(t, e1, c1, n1, b, Options{})

	e2, c2, n2 := tenantCluster(t, 1)
	n2[0].AddRequestLoad(1e9) // saturating load
	loaded := runBench(t, e2, c2, n2, b, Options{})
	slow := loaded/alone - 1
	if slow < 0.18 || slow > 0.22 {
		t.Fatalf("latency slowdown %.3f, want ~0.20 at saturation", slow)
	}
}

func TestCacheSensitivitySlowsWithForeignMemory(t *testing.T) {
	b := Benchmark{Name: "dfsio", Phases: []Phase{{Name: "read", CPUSeconds: 10, CacheSensitivity: 0.64}}}
	e1, c1, n1 := tenantCluster(t, 1)
	alone := runBench(t, e1, c1, n1, b, Options{})

	e2, c2, n2 := tenantCluster(t, 1)
	foreign := func(string) int64 { return 16 << 30 } // 25% of 64 GB
	loaded := runBench(t, e2, c2, n2, b, Options{ForeignBytes: foreign})
	slow := loaded/alone - 1
	if math.Abs(slow-0.16) > 0.01 { // 0.64 * 0.25
		t.Fatalf("cache slowdown %.3f, want ~0.16", slow)
	}
	if alone != runBenchAgain(t, b) {
		t.Fatal("baseline not reproducible")
	}
}

func runBenchAgain(t *testing.T, b Benchmark) float64 {
	e, c, n := tenantCluster(t, 1)
	return runBench(t, e, c, n, b, Options{})
}

func TestMemoryAccountingFreedBetweenPhases(t *testing.T) {
	e, c, nodes := tenantCluster(t, 1)
	b := Benchmark{Name: "mem", Phases: []Phase{
		{Name: "a", CPUSeconds: 1, MemBytes: 30 << 30},
		{Name: "b", CPUSeconds: 1, MemBytes: 10 << 30},
	}}
	runBench(t, e, c, nodes, b, Options{})
	if used := nodes[0].Mem.Used(); used != 0 {
		t.Fatalf("memory leak: %d bytes still allocated", used)
	}
}

func TestEmptyPhaseSkipped(t *testing.T) {
	e, c, nodes := tenantCluster(t, 1)
	b := Benchmark{Name: "hollow", Phases: []Phase{
		{Name: "empty"},
		{Name: "real", CPUSeconds: 2},
	}}
	if got := runBench(t, e, c, nodes, b, Options{}); !almost(got, 2) {
		t.Fatalf("runtime %v, want 2", got)
	}
}

func TestHPCCCatalog(t *testing.T) {
	suite := HPCC()
	if len(suite) != 8 {
		t.Fatalf("HPCC has %d benchmarks, want 8", len(suite))
	}
	names := map[string]bool{}
	for _, b := range suite {
		names[b.Name] = true
		if b.Suite != "HPCC" || len(b.Phases) == 0 {
			t.Fatalf("malformed benchmark %+v", b)
		}
	}
	for _, want := range []string{"G-HPL", "EP-STREAM", "RR-Latency", "G-FFT"} {
		if !names[want] {
			t.Errorf("missing %s", want)
		}
	}
	// STREAM must be memory-bandwidth dominated; Latency must be the most
	// latency-sensitive.
	var stream, latency Benchmark
	for _, b := range suite {
		if b.Name == "EP-STREAM" {
			stream = b
		}
		if b.Name == "RR-Latency" {
			latency = b
		}
	}
	if stream.Phases[0].MemBWBytes < 1000e9 {
		t.Error("STREAM not memory-bandwidth heavy")
	}
	for _, b := range suite {
		if b.Name != "RR-Latency" && b.Phases[0].LatencySensitivity >= latency.Phases[0].LatencySensitivity {
			t.Errorf("%s more latency-sensitive than RR-Latency", b.Name)
		}
	}
}

func TestHiBenchCatalogs(t *testing.T) {
	hadoop := HiBenchHadoop()
	if len(hadoop) != 6 {
		t.Fatalf("HiBench-Hadoop has %d benchmarks, want 6", len(hadoop))
	}
	spark := HiBenchSpark()
	if len(spark) != 4 {
		t.Fatalf("HiBench-Spark has %d benchmarks, want 4 (no DFSIO)", len(spark))
	}
	for _, b := range spark {
		if b.Name == "DFSIO-read" || b.Name == "DFSIO-write" {
			t.Fatal("DFSIO must not appear in the Spark suite")
		}
		for _, p := range b.Phases {
			if p.CacheSensitivity <= 0.5 {
				t.Errorf("Spark %s/%s lacks GC sensitivity", b.Name, p.Name)
			}
		}
	}
	// TeraSort shuffle must be the network-heaviest Hadoop phase.
	var maxNet float64
	var maxName string
	for _, b := range hadoop {
		for _, p := range b.Phases {
			if p.NetBytes > maxNet {
				maxNet, maxName = p.NetBytes, b.Name+"/"+p.Name
			}
		}
	}
	if maxName != "TeraSort/shuffle" {
		t.Errorf("heaviest network phase is %s, want TeraSort/shuffle", maxName)
	}
}

func TestSuiteRunsEndToEnd(t *testing.T) {
	for _, b := range HPCC() {
		e, c, nodes := tenantCluster(t, 4)
		if got := runBench(t, e, c, nodes, b, Options{}); got <= 0 {
			t.Fatalf("%s runtime %v", b.Name, got)
		}
	}
}

// The latency penalty must integrate over time: a load present for only
// half the phase costs roughly half the saturated penalty, regardless of
// where quantum boundaries fall.
func TestLatencyPenaltyIntegratesBursts(t *testing.T) {
	b := Benchmark{Name: "lat", Phases: []Phase{{Name: "p", CPUSeconds: 20, LatencySensitivity: 0.2}}}

	e1, c1, n1 := tenantCluster(t, 1)
	alone := runBench(t, e1, c1, n1, b, Options{})

	e2, c2, n2 := tenantCluster(t, 1)
	n2[0].AddRequestLoad(1e9)                        // saturating...
	e2.At(10, func() { n2[0].AddRequestLoad(-1e9) }) // ...for the first half only
	half := runBench(t, e2, c2, n2, b, Options{})

	slow := half/alone - 1
	// Full saturation costs ~20%; half-duration bursts should cost ~10%.
	if slow < 0.06 || slow > 0.14 {
		t.Fatalf("half-duration load slowdown %.3f, want ~0.10", slow)
	}
}

// Cache inflation applies to memory-bandwidth and network streams too,
// not just CPU.
func TestCacheInflationAppliesToAllStreams(t *testing.T) {
	b := Benchmark{Name: "io", Phases: []Phase{{
		Name: "p", MemBWBytes: 400e9, NetBytes: 30e9, CacheSensitivity: 0.64,
	}}}
	e1, c1, n1 := tenantCluster(t, 2)
	alone := runBench(t, e1, c1, n1, b, Options{})

	e2, c2, n2 := tenantCluster(t, 2)
	loaded := runBench(t, e2, c2, n2, b, Options{
		ForeignBytes: func(string) int64 { return 16 << 30 }, // 25% of RAM
	})
	slow := loaded/alone - 1
	if slow < 0.12 || slow > 0.20 { // 0.64 * 0.25 = 16%
		t.Fatalf("I/O-stream cache slowdown %.3f, want ~0.16", slow)
	}
}
