// Package tenant models the applications running in victim reservations —
// the HPCC MPI suite and the HiBench big-data suite on Hadoop and Spark
// (paper §IV-A2). Each benchmark is a sequence of phases with per-node
// resource demands (CPU, memory bandwidth, network, resident memory) plus
// two interference sensitivities the resource models cannot express
// directly:
//
//   - latency sensitivity: MPI codes slow down when co-located stores
//     serve many small requests (BLAST's 8 KiB I/O, §IV-C);
//   - cache sensitivity: codes relying on the page cache (DFSIO-read) or
//     on JVM heap headroom (Spark, §IV-C) slow down when scavenged stores
//     occupy node memory.
//
// A benchmark's slowdown is measured exactly as in the paper: run it alone,
// run it again while MemFSS scavenges, and compare runtimes.
package tenant

import (
	"fmt"

	"memfss/internal/cluster"
	"memfss/internal/sim"
)

// Phase is one stage of a benchmark, with demands per node. All demands
// proceed concurrently on every node; the phase ends when the slowest node
// finishes (an MPI-style barrier).
type Phase struct {
	// Name labels the phase ("shuffle").
	Name string
	// CPUSeconds is compute work per core.
	CPUSeconds float64
	// MemBWBytes is memory traffic per node.
	MemBWBytes float64
	// NetBytes is bytes each node sends to its ring neighbour.
	NetBytes float64
	// MemBytes is the resident set per node while the phase runs.
	MemBytes int64
	// LatencySensitivity scales runtime inflation with the co-located
	// store's small-request load (saturating in the load).
	LatencySensitivity float64
	// CacheSensitivity scales runtime inflation with the fraction of
	// node memory occupied by scavenged stores.
	CacheSensitivity float64
}

// Benchmark is a named sequence of phases.
type Benchmark struct {
	Name   string
	Suite  string
	Phases []Phase
}

// Options configures a benchmark run.
type Options struct {
	// ForeignBytes reports the scavenged-store bytes resident on a node
	// (nil means zero everywhere — the "alone" baseline).
	ForeignBytes func(nodeID string) int64
	// RefRequestLoad is the request rate (req/s) at which latency
	// interference reaches half its saturating value (default 1000).
	RefRequestLoad float64
	// Quanta is the number of slices each demand is split into so
	// interference is re-sampled as conditions change (default 16).
	Quanta int
}

// Runner executes one benchmark across a set of nodes.
type Runner struct {
	eng   *sim.Engine
	net   flowStarter
	nodes []*cluster.Node
	bench Benchmark
	opts  Options

	phase     int
	remaining int // outstanding demand streams in the current phase
	startAt   float64
	endAt     float64
	done      bool
	started   bool
}

// flowStarter is the piece of simnet the runner needs.
type flowStarter interface {
	StartFlow(src, dst string, bytes float64, done func()) flowHandle
}

type flowHandle interface{ Rate() float64 }

// netAdapter adapts *simnet.Network (whose StartFlow returns a concrete
// type) to flowStarter.
type netAdapter struct{ c *cluster.Cluster }

func (a netAdapter) StartFlow(src, dst string, bytes float64, done func()) flowHandle {
	f := a.c.Net.StartFlow(src, dst, bytes, done)
	if f == nil {
		return nil
	}
	return f
}

// NewRunner prepares a benchmark over the nodes of a victim reservation.
func NewRunner(eng *sim.Engine, cls *cluster.Cluster, nodes []*cluster.Node, b Benchmark, opts Options) (*Runner, error) {
	if eng == nil || cls == nil || len(nodes) == 0 {
		return nil, fmt.Errorf("tenant: runner needs an engine, cluster and nodes")
	}
	if len(b.Phases) == 0 {
		return nil, fmt.Errorf("tenant: benchmark %q has no phases", b.Name)
	}
	if opts.RefRequestLoad <= 0 {
		opts.RefRequestLoad = 1000
	}
	if opts.Quanta <= 0 {
		opts.Quanta = 16
	}
	return &Runner{
		eng:   eng,
		net:   netAdapter{cls},
		nodes: nodes,
		bench: b,
		opts:  opts,
	}, nil
}

// Start launches the benchmark; run the engine afterwards.
func (r *Runner) Start() error {
	if r.started {
		return fmt.Errorf("tenant: runner already started")
	}
	r.started = true
	r.startAt = r.eng.Now()
	r.runPhase(0)
	return nil
}

// Done reports completion of all phases.
func (r *Runner) Done() bool { return r.done }

// Runtime returns the benchmark's total runtime (0 until Done).
func (r *Runner) Runtime() float64 {
	if !r.done {
		return 0
	}
	return r.endAt - r.startAt
}

// cacheInflation computes a node's memory-occupancy interference
// multiplier (page-cache / JVM-heap competition); it varies slowly, so
// sampling it at slice start is accurate.
func (r *Runner) cacheInflation(p *Phase, n *cluster.Node) float64 {
	f := 1.0
	if p.CacheSensitivity > 0 && r.opts.ForeignBytes != nil {
		foreign := float64(r.opts.ForeignBytes(n.ID))
		f += p.CacheSensitivity * foreign / float64(n.Spec.MemoryBytes)
	}
	return f
}

// latencyPenalty converts the average store-request rate endured during a
// slice into extra work, saturating in the load (half effect at the
// reference rate). Integrating over the slice charges bursty I/O by its
// duration, which point-sampling would systematically miss.
func (r *Runner) latencyPenalty(p *Phase, avgLoad float64) float64 {
	if p.LatencySensitivity <= 0 || avgLoad <= 0 {
		return 0
	}
	return p.LatencySensitivity * avgLoad / (avgLoad + r.opts.RefRequestLoad)
}

func (r *Runner) runPhase(idx int) {
	if idx >= len(r.bench.Phases) {
		r.done = true
		r.endAt = r.eng.Now()
		return
	}
	r.phase = idx
	p := &r.bench.Phases[idx]

	// Count the demand streams: per node, one per core with CPU work,
	// one memory-bandwidth stream, one network stream.
	streams := 0
	for range r.nodes {
		if p.CPUSeconds > 0 {
			streams += r.nodes[0].Spec.Cores
		}
		if p.MemBWBytes > 0 {
			streams++
		}
		if p.NetBytes > 0 {
			streams++
		}
	}
	if streams == 0 {
		r.runPhase(idx + 1)
		return
	}
	r.remaining = streams
	barrier := func() {
		r.remaining--
		if r.remaining == 0 {
			for _, n := range r.nodes {
				if p.MemBytes > 0 {
					n.Mem.Free(minInt64(p.MemBytes, n.Mem.Used()))
				}
			}
			r.runPhase(idx + 1)
		}
	}

	for i, n := range r.nodes {
		if p.MemBytes > 0 {
			// Best effort: a full node simply caps at capacity.
			n.Mem.Alloc(minInt64(p.MemBytes, n.Mem.Available()))
		}
		if p.CPUSeconds > 0 {
			submit := func(n *cluster.Node) func(float64, func()) {
				return func(work float64, done func()) { n.CPU.Submit(work, done) }
			}(n)
			for c := 0; c < n.Spec.Cores; c++ {
				r.quantized(p, n, submit, p.CPUSeconds, r.opts.Quanta, barrier)
			}
		}
		if p.MemBWBytes > 0 {
			n := n
			r.quantized(p, n, func(work float64, done func()) {
				n.MemBW.Submit(work, done)
			}, p.MemBWBytes, r.opts.Quanta, barrier)
		}
		if p.NetBytes > 0 {
			src, dst := n, r.nodes[(i+1)%len(r.nodes)]
			r.quantized(p, src, func(bytes float64, done func()) {
				r.net.StartFlow(src.ID, dst.ID, bytes, done)
			}, p.NetBytes, r.opts.Quanta, barrier)
		}
	}
}

// quantized runs work in slices through submit. Each slice is scaled by
// the (slow-varying) cache inflation up front; after it completes, the
// average store-request rate endured during the slice is converted into a
// latency penalty and charged as extra work before the next slice.
func (r *Runner) quantized(p *Phase, n *cluster.Node, submit func(float64, func()), work float64, quanta int, done func()) {
	slice := work / float64(quanta)
	var step func(left int)
	step = func(left int) {
		if left == 0 {
			done()
			return
		}
		t0 := r.eng.Now()
		i0 := n.RequestIntegral()
		submit(slice*r.cacheInflation(p, n), func() {
			dt := r.eng.Now() - t0
			pen := 0.0
			if dt > 0 {
				pen = r.latencyPenalty(p, (n.RequestIntegral()-i0)/dt)
			}
			if pen > 0 {
				submit(slice*pen, func() { step(left - 1) })
				return
			}
			step(left - 1)
		})
	}
	step(quanta)
}

func minInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
