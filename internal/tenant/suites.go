package tenant

// Benchmark catalogs. Per-node demands are sized for DAS-5-class victim
// nodes (16 cores, 64 GB, 3 GB/s NIC, 40 GB/s memory bandwidth) with the
// paper's tuning: benchmarks use all cores and up to 48 GB per node
// (§IV-A2). Sensitivities encode each benchmark's published bottleneck:
// STREAM lives on memory bandwidth, the HPCC latency test on small-message
// latency, TeraSort on shuffle bandwidth and memory, DFSIO-read on the
// page cache, and everything on Spark additionally on JVM heap headroom.

const gb = 1e9

// HPCC returns the HPC Challenge suite (§IV-A2): the benchmark categories
// suggested on the HPCC website, as plotted in Figure 3.
func HPCC() []Benchmark {
	mk := func(name string, p Phase) Benchmark {
		p.Name = "run"
		return Benchmark{Name: name, Suite: "HPCC", Phases: []Phase{p}}
	}
	return []Benchmark{
		mk("G-HPL", Phase{
			CPUSeconds: 90, MemBWBytes: 600 * gb, NetBytes: 40 * gb,
			MemBytes: 45 << 30, LatencySensitivity: 0.02,
		}),
		mk("G-PTRANS", Phase{
			CPUSeconds: 15, MemBWBytes: 800 * gb, NetBytes: 150 * gb,
			MemBytes: 40 << 30, LatencySensitivity: 0.02,
		}),
		mk("G-FFT", Phase{
			CPUSeconds: 30, MemBWBytes: 900 * gb, NetBytes: 80 * gb,
			MemBytes: 40 << 30, LatencySensitivity: 0.04,
		}),
		mk("G-RandomAccess", Phase{
			CPUSeconds: 25, MemBWBytes: 800 * gb, NetBytes: 50 * gb,
			MemBytes: 40 << 30, LatencySensitivity: 0.06,
		}),
		mk("EP-STREAM", Phase{
			CPUSeconds: 4, MemBWBytes: 2000 * gb, NetBytes: 0,
			MemBytes: 45 << 30, LatencySensitivity: 0.02,
		}),
		mk("EP-DGEMM", Phase{
			CPUSeconds: 60, MemBWBytes: 400 * gb, NetBytes: 1 * gb,
			MemBytes: 40 << 30, LatencySensitivity: 0.01,
		}),
		mk("RR-Bandwidth", Phase{
			CPUSeconds: 3, MemBWBytes: 200 * gb, NetBytes: 250 * gb,
			MemBytes: 8 << 30, LatencySensitivity: 0.02,
		}),
		mk("RR-Latency", Phase{
			CPUSeconds: 40, MemBWBytes: 50 * gb, NetBytes: 1 * gb,
			MemBytes: 4 << 30, LatencySensitivity: 0.22,
		}),
	}
}

// hiBenchCore returns the map/shuffle/reduce phase structure of the six
// HiBench benchmarks Figure 4 plots, for the disk-based Hadoop engine.
func hiBenchHadoopList() []Benchmark {
	mk := func(name string, phases ...Phase) Benchmark {
		return Benchmark{Name: name, Suite: "HiBench-Hadoop", Phases: phases}
	}
	return []Benchmark{
		// KMeans: CPU-intensive iterations with high I/O per pass.
		mk("KMeans",
			Phase{Name: "map", CPUSeconds: 50, MemBWBytes: 500 * gb, NetBytes: 10 * gb, MemBytes: 30 << 30, LatencySensitivity: 0.01},
			Phase{Name: "reduce", CPUSeconds: 15, MemBWBytes: 150 * gb, NetBytes: 15 * gb, MemBytes: 20 << 30, LatencySensitivity: 0.01},
		),
		// PageRank: CPU-bound with highly variable utilization.
		mk("PageRank",
			Phase{Name: "map", CPUSeconds: 40, MemBWBytes: 300 * gb, NetBytes: 25 * gb, MemBytes: 30 << 30, LatencySensitivity: 0.01},
			Phase{Name: "shuffle", CPUSeconds: 8, MemBWBytes: 200 * gb, NetBytes: 60 * gb, MemBytes: 30 << 30, LatencySensitivity: 0.01},
			Phase{Name: "reduce", CPUSeconds: 25, MemBWBytes: 200 * gb, NetBytes: 10 * gb, MemBytes: 25 << 30, LatencySensitivity: 0.01},
		),
		// WordCount: CPU-bound with high memory usage.
		mk("WordCount",
			Phase{Name: "map", CPUSeconds: 55, MemBWBytes: 600 * gb, NetBytes: 8 * gb, MemBytes: 42 << 30, LatencySensitivity: 0.01},
			Phase{Name: "reduce", CPUSeconds: 10, MemBWBytes: 100 * gb, NetBytes: 6 * gb, MemBytes: 25 << 30, LatencySensitivity: 0.01},
		),
		// TeraSort: CPU-intensive map, then a shuffle with large memory
		// use and very heavy network traffic (the paper's worst case).
		mk("TeraSort",
			Phase{Name: "map", CPUSeconds: 35, MemBWBytes: 500 * gb, NetBytes: 15 * gb, MemBytes: 40 << 30, LatencySensitivity: 0.01},
			Phase{Name: "shuffle", CPUSeconds: 6, MemBWBytes: 700 * gb, NetBytes: 320 * gb, MemBytes: 46 << 30, LatencySensitivity: 0.2, CacheSensitivity: 0.3},
			Phase{Name: "reduce", CPUSeconds: 20, MemBWBytes: 400 * gb, NetBytes: 20 * gb, MemBytes: 40 << 30, LatencySensitivity: 0.01},
		),
		// DFSIO-read: I/O intensive; HDFS reads come from the page cache,
		// which shrinks when scavenged stores occupy memory (§IV-C).
		mk("DFSIO-read",
			Phase{Name: "read", CPUSeconds: 10, MemBWBytes: 900 * gb, NetBytes: 120 * gb, MemBytes: 46 << 30, LatencySensitivity: 0.06, CacheSensitivity: 0.35},
		),
		// DFSIO-write: I/O intensive with large network traffic
		// (replication pipeline), less cache-dependent.
		mk("DFSIO-write",
			Phase{Name: "write", CPUSeconds: 10, MemBWBytes: 700 * gb, NetBytes: 160 * gb, MemBytes: 35 << 30, LatencySensitivity: 0.01, CacheSensitivity: 0.1},
		),
	}
}

// HiBenchHadoop returns the HiBench suite as run on Hadoop (Figure 4).
func HiBenchHadoop() []Benchmark { return hiBenchHadoopList() }

// HiBenchSpark returns the HiBench suite as run on Spark (Figure 5): the
// same four benchmarks (DFSIO is not implemented for Spark, §IV-C), but
// as an in-memory engine every phase holds a large resident set and is
// sensitive to heap headroom — scavenged memory also slows the JVM
// garbage collector.
func HiBenchSpark() []Benchmark {
	const sparkGC = 1.3 // GC + executor-memory sensitivity
	base := hiBenchHadoopList()
	out := make([]Benchmark, 0, 4)
	for _, b := range base {
		switch b.Name {
		case "KMeans", "PageRank", "WordCount", "TeraSort":
		default:
			continue
		}
		nb := Benchmark{Name: b.Name, Suite: "HiBench-Spark"}
		for _, p := range b.Phases {
			// Spark keeps working sets in executor memory: larger
			// resident sets, more memory-bandwidth pressure, and GC
			// sensitivity to foreign memory occupancy.
			p.MemBytes = 46 << 30
			p.MemBWBytes *= 1.4
			p.CacheSensitivity += sparkGC
			nb.Phases = append(nb.Phases, p)
		}
		out = append(out, nb)
	}
	return out
}
