// Package fsmeta defines the metadata records and path conventions of the
// MemFSS namespace (paper §III-D): directory structure, file sizes, stripe
// configuration, and the snapshot of HRW class weights that was in force
// when a file was written. Records are stored on the own-node class only,
// sharded by a simple modulo hash, so that metadata operations (which are
// latency-bound) stay on nodes the user controls.
package fsmeta

import (
	"encoding/json"
	"fmt"
	"strings"
)

// ClassSnapshot captures one HRW class as it existed when a file was
// written. Storing the snapshot in metadata lets MemFSS add victim classes
// later (changing the live weights) while keeping every existing file
// resolvable (paper §III-D).
type ClassSnapshot struct {
	Name   string   `json:"name"`
	Weight float64  `json:"weight"`
	Nodes  []string `json:"nodes"`
}

// FileRecord is the per-file metadata record.
type FileRecord struct {
	// ID is the stable file identity used to derive stripe keys. It never
	// changes across renames, so data does not move when a file moves in
	// the namespace.
	ID string `json:"id"`
	// Size is the file length in bytes.
	Size int64 `json:"size"`
	// StripeSize is the stripe granularity the file was written with.
	StripeSize int64 `json:"stripeSize"`
	// Replicas is the replication factor (1 = no redundancy).
	Replicas int `json:"replicas"`
	// DataShards/ParityShards are non-zero when the file is erasure-coded
	// instead of replicated; they record the RS(k, m) geometry the file
	// was written with.
	DataShards   int `json:"dataShards,omitempty"`
	ParityShards int `json:"parityShards,omitempty"`
	// Classes is the placement snapshot: the classes, weights and node
	// lists the two-layer HRW protocol used for this file's stripes.
	Classes []ClassSnapshot `json:"classes"`
}

// DirRecord marks a path as a directory. Children are tracked separately
// in a store-side set so concurrent creates do not race.
type DirRecord struct {
	// Dir is always true; it distinguishes an encoded DirRecord from an
	// encoded FileRecord when sniffing a metadata value.
	Dir bool `json:"dir"`
}

// Record is the union stored under a metadata key: exactly one of File and
// Directory is set.
type Record struct {
	File      *FileRecord `json:"file,omitempty"`
	Directory *DirRecord  `json:"directory,omitempty"`
}

// IsDir reports whether the record describes a directory.
func (r *Record) IsDir() bool { return r.Directory != nil }

// Encode serializes the record for storage.
func (r *Record) Encode() ([]byte, error) {
	if (r.File == nil) == (r.Directory == nil) {
		return nil, fmt.Errorf("fsmeta: record must have exactly one of file/directory set")
	}
	return json.Marshal(r)
}

// Decode parses a record previously produced by Encode.
func Decode(data []byte) (*Record, error) {
	var r Record
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("fsmeta: corrupt record: %w", err)
	}
	if (r.File == nil) == (r.Directory == nil) {
		return nil, fmt.Errorf("fsmeta: record has neither or both of file/directory")
	}
	return &r, nil
}

// Clean canonicalizes an absolute MemFSS path: it must start with '/',
// contains no empty, "." or ".." segments after cleaning, and has no
// trailing slash (except the root itself). Clean returns an error for
// relative paths and for paths escaping the root.
func Clean(path string) (string, error) {
	if path == "" || path[0] != '/' {
		return "", fmt.Errorf("fsmeta: path %q is not absolute", path)
	}
	segs := strings.Split(path, "/")
	out := make([]string, 0, len(segs))
	for _, s := range segs {
		switch s {
		case "", ".":
			// skip
		case "..":
			if len(out) == 0 {
				return "", fmt.Errorf("fsmeta: path %q escapes root", path)
			}
			out = out[:len(out)-1]
		default:
			out = append(out, s)
		}
	}
	if len(out) == 0 {
		return "/", nil
	}
	return "/" + strings.Join(out, "/"), nil
}

// Parent returns the parent directory of a cleaned path. The parent of the
// root is the root itself.
func Parent(cleaned string) string {
	if cleaned == "/" {
		return "/"
	}
	i := strings.LastIndexByte(cleaned, '/')
	if i <= 0 {
		return "/"
	}
	return cleaned[:i]
}

// Base returns the final path segment of a cleaned path ("" for the root).
func Base(cleaned string) string {
	if cleaned == "/" {
		return ""
	}
	i := strings.LastIndexByte(cleaned, '/')
	return cleaned[i+1:]
}

// MetaKey returns the store key holding the Record for a path.
func MetaKey(cleaned string) string { return "meta:" + cleaned }

// DirKey returns the store key of the set holding a directory's child
// names.
func DirKey(cleaned string) string { return "dir:" + cleaned }

// Shard returns the index of the own node responsible for a path's
// metadata, using the simple modulo scheme of paper §III-D.
func Shard(cleaned string, numOwnNodes int) int {
	if numOwnNodes <= 0 {
		return 0
	}
	// FNV-1a over the path; stable across processes.
	const (
		offset = 2166136261
		prime  = 16777619
	)
	h := uint32(offset)
	for i := 0; i < len(cleaned); i++ {
		h ^= uint32(cleaned[i])
		h *= prime
	}
	return int(h % uint32(numOwnNodes))
}
