package fsmeta

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestCleanValid(t *testing.T) {
	cases := []struct{ in, want string }{
		{"/", "/"},
		{"//", "/"},
		{"/a", "/a"},
		{"/a/", "/a"},
		{"/a//b", "/a/b"},
		{"/a/./b", "/a/b"},
		{"/a/b/../c", "/a/c"},
		{"/a/b/..", "/a"},
		{"/a/..", "/"},
	}
	for _, c := range cases {
		got, err := Clean(c.in)
		if err != nil {
			t.Errorf("Clean(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("Clean(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestCleanInvalid(t *testing.T) {
	for _, in := range []string{"", "a/b", "relative", "/..", "/a/../.."} {
		if got, err := Clean(in); err == nil {
			t.Errorf("Clean(%q) = %q, want error", in, got)
		}
	}
}

// Property: Clean is idempotent on its own output.
func TestCleanIdempotent(t *testing.T) {
	f := func(segs []uint8) bool {
		parts := make([]string, 0, len(segs))
		for _, s := range segs {
			parts = append(parts, []string{"a", "bb", ".", "..", "", "c-1"}[int(s)%6])
		}
		p := "/" + strings.Join(parts, "/")
		c1, err := Clean(p)
		if err != nil {
			return true // escaping root is allowed to fail
		}
		c2, err := Clean(c1)
		return err == nil && c1 == c2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestParentBase(t *testing.T) {
	cases := []struct{ in, parent, base string }{
		{"/", "/", ""},
		{"/a", "/", "a"},
		{"/a/b", "/a", "b"},
		{"/a/b/c", "/a/b", "c"},
	}
	for _, c := range cases {
		if got := Parent(c.in); got != c.parent {
			t.Errorf("Parent(%q) = %q, want %q", c.in, got, c.parent)
		}
		if got := Base(c.in); got != c.base {
			t.Errorf("Base(%q) = %q, want %q", c.in, got, c.base)
		}
	}
}

func TestRecordEncodeDecodeFile(t *testing.T) {
	rec := &Record{File: &FileRecord{
		ID:         "f-42",
		Size:       12345,
		StripeSize: 1 << 20,
		Replicas:   2,
		Classes: []ClassSnapshot{
			{Name: "own", Weight: 0.29, Nodes: []string{"o0", "o1"}},
			{Name: "victim", Weight: 0, Nodes: []string{"v0"}},
		},
	}}
	data, err := rec.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.IsDir() {
		t.Fatal("file record decoded as dir")
	}
	if got.File.ID != "f-42" || got.File.Size != 12345 || got.File.Replicas != 2 {
		t.Fatalf("round trip mismatch: %+v", got.File)
	}
	if len(got.File.Classes) != 2 || got.File.Classes[0].Weight != 0.29 {
		t.Fatalf("class snapshot lost: %+v", got.File.Classes)
	}
}

func TestRecordEncodeDecodeDir(t *testing.T) {
	rec := &Record{Directory: &DirRecord{Dir: true}}
	data, err := rec.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsDir() {
		t.Fatal("dir record decoded as file")
	}
}

func TestRecordEncodeRejectsMalformed(t *testing.T) {
	if _, err := (&Record{}).Encode(); err == nil {
		t.Error("empty record encoded")
	}
	both := &Record{File: &FileRecord{}, Directory: &DirRecord{}}
	if _, err := both.Encode(); err == nil {
		t.Error("record with both variants encoded")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode([]byte("not json")); err == nil {
		t.Error("garbage decoded")
	}
	if _, err := Decode([]byte("{}")); err == nil {
		t.Error("empty object decoded")
	}
}

func TestKeysDistinct(t *testing.T) {
	if MetaKey("/a") == DirKey("/a") {
		t.Error("meta and dir keys collide")
	}
}

func TestShardStableAndInRange(t *testing.T) {
	paths := []string{"/", "/a", "/a/b", "/montage/out/tile-17.fits"}
	for _, p := range paths {
		s := Shard(p, 8)
		if s < 0 || s >= 8 {
			t.Errorf("Shard(%q, 8) = %d out of range", p, s)
		}
		if s != Shard(p, 8) {
			t.Errorf("Shard(%q) not stable", p)
		}
	}
	if Shard("/x", 0) != 0 {
		t.Error("Shard with zero nodes should return 0")
	}
}

func TestShardSpreads(t *testing.T) {
	counts := make([]int, 8)
	for i := 0; i < 8000; i++ {
		counts[Shard("/wf/stage/"+strings.Repeat("x", i%7)+string(rune('a'+i%26)), 8)]++
	}
	// Coarse balance check: no shard should be empty or hold the majority.
	for i, c := range counts {
		if c == 0 {
			t.Errorf("shard %d empty", i)
		}
		if c > 4000 {
			t.Errorf("shard %d holds %d of 8000", i, c)
		}
	}
}
