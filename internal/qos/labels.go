package qos

import "sync"

// defaultMaxTenantSeries bounds per-tenant metric label cardinality. It is
// deliberately far below the obs registry's per-family backstop (512): the
// obs cap protects the registry by silently dropping series, which for
// tenants would mean invisible traffic. The qos-level cap instead
// aggregates every tenant past the bound into one "other" series, so the
// totals stay honest no matter how many tenants exist.
const defaultMaxTenantSeries = 32

// overflowLabel is the shared label value for tenants past the cap.
const overflowLabel = "other"

// labelMap assigns each tenant a stable metric label value: its own name
// for the first cap distinct tenants, "other" afterwards. Assignments are
// never reclaimed — a tenant that appeared once keeps its slot even after
// removal, so a churn of short-lived tenants cannot pump the cardinality
// and a re-added tenant keeps its history.
type labelMap struct {
	mu       sync.Mutex
	cap      int
	assigned map[string]string
}

func newLabelMap(cap int) *labelMap {
	return &labelMap{cap: cap, assigned: make(map[string]string)}
}

// labelFor returns the metric label value for a tenant name. Overflow
// names are not stored, keeping the map bounded at cap entries no matter
// how many tenants churn through.
func (m *labelMap) labelFor(name string) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	if v, ok := m.assigned[name]; ok {
		return v
	}
	if len(m.assigned) >= m.cap {
		return overflowLabel
	}
	m.assigned[name] = name
	return name
}
