package qos

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"memfss/internal/obs"
)

func TestTenantSpecValidate(t *testing.T) {
	good := []TenantSpec{
		{Name: "a"},
		{Name: "batch", QuotaBytes: 1 << 30, Weight: 2.5, Priority: PriorityHigh},
	}
	for _, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("%+v rejected: %v", s, err)
		}
	}
	bad := []TenantSpec{
		{},
		{Name: "a/b"},
		{Name: "a b"},
		{Name: "a", QuotaBytes: -1},
		{Name: "a", Weight: -1},
		{Name: "a", Priority: Priority(9)},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("%+v accepted", s)
		}
	}
}

func TestParsePriorityRoundTrip(t *testing.T) {
	for _, p := range []Priority{PriorityLow, PriorityNormal, PriorityHigh} {
		got, err := ParsePriority(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePriority(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePriority("urgent"); err == nil {
		t.Error("ParsePriority accepted unknown value")
	}
}

func TestNilRegistryNoOps(t *testing.T) {
	var r *Registry
	if err := r.Take("a", "write", 1<<30); err != nil {
		t.Fatal(err)
	}
	if err := r.Charge("a", 1<<30); err != nil {
		t.Fatal(err)
	}
	r.Credit("a", 1)
	if got := r.ResolveTenant(TenantRoot("a") + "/f"); got != "" {
		t.Fatalf("nil registry resolved %q", got)
	}
	if p := r.PriorityFor("/tenants/a/f"); p != PriorityNormal {
		t.Fatalf("nil registry priority %v", p)
	}
	r.Close()
	if r.Add(TenantSpec{Name: "a"}) == nil {
		t.Fatal("nil registry Add succeeded")
	}
}

func TestResolveTenant(t *testing.T) {
	r := NewRegistry(Options{})
	if err := r.Add(TenantSpec{Name: "hpc"}); err != nil {
		t.Fatal(err)
	}
	cases := map[string]string{
		"/tenants/hpc/run1/out.dat": "hpc",
		"/tenants/hpc":              "hpc",
		"/tenants/other/x":          "", // unregistered
		"/data/hpc/x":               "",
		"/":                         "",
	}
	for path, want := range cases {
		if got := r.ResolveTenant(path); got != want {
			t.Errorf("ResolveTenant(%q) = %q, want %q", path, got, want)
		}
	}
}

func TestQuotaChargeCredit(t *testing.T) {
	r := NewRegistry(Options{})
	if err := r.Add(TenantSpec{Name: "a", QuotaBytes: 100}); err != nil {
		t.Fatal(err)
	}
	if err := r.Charge("a", 80); err != nil {
		t.Fatal(err)
	}
	if err := r.Charge("a", 30); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("overcharge: %v", err)
	}
	if got := r.Used("a"); got != 80 {
		t.Fatalf("rejected charge leaked: used=%d", got)
	}
	if err := r.Charge("a", 20); err != nil {
		t.Fatal(err) // exactly at quota is allowed
	}
	r.Credit("a", 50)
	if err := r.Charge("a", 50); err != nil {
		t.Fatal(err)
	}
	r.Credit("a", 1000) // over-credit clamps at zero
	if got := r.Used("a"); got != 0 {
		t.Fatalf("used after over-credit = %d", got)
	}
	if err := r.Charge("missing", 1); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("unknown tenant charge: %v", err)
	}
	// Unattributed and zero-quota tenants are never rejected.
	if err := r.Charge("", 1<<40); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(TenantSpec{Name: "free"}); err != nil {
		t.Fatal(err)
	}
	if err := r.Charge("free", 1<<40); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedShares(t *testing.T) {
	r := NewRegistry(Options{TotalBandwidth: 100 << 20})
	defer r.Close()
	if err := r.Add(TenantSpec{Name: "hi", Weight: 3}); err != nil {
		t.Fatal(err)
	}
	if got := r.Rate("hi"); got != 100<<20 {
		t.Fatalf("solo tenant rate = %d, want full budget %d", got, 100<<20)
	}
	if err := r.Add(TenantSpec{Name: "lo", Weight: 1}); err != nil {
		t.Fatal(err)
	}
	if got := r.Rate("hi"); got != 75<<20 {
		t.Fatalf("hi rate = %d, want %d", got, 75<<20)
	}
	if got := r.Rate("lo"); got != 25<<20 {
		t.Fatalf("lo rate = %d, want %d", got, 25<<20)
	}
	// Removal rebalances the survivors back up.
	if !r.Remove("lo") {
		t.Fatal("Remove lo")
	}
	if got := r.Rate("hi"); got != 100<<20 {
		t.Fatalf("hi rate after removal = %d, want %d", got, 100<<20)
	}
	// Updating a spec via Add rebalances too.
	if err := r.Add(TenantSpec{Name: "lo", Weight: 3}); err != nil {
		t.Fatal(err)
	}
	if got := r.Rate("hi"); got != 50<<20 {
		t.Fatalf("hi rate after lo reweight = %d, want %d", got, 50<<20)
	}
}

// TestRebalanceReachesBlockedWaiter: a tenant blocked on its share picks
// up the larger share another tenant's removal frees, via the throttle's
// runtime resize — the scheduler-level version of the container
// regression test.
func TestRebalanceReachesBlockedWaiter(t *testing.T) {
	r := NewRegistry(Options{TotalBandwidth: 2 << 20})
	defer r.Close()
	if err := r.Add(TenantSpec{Name: "hog", Weight: 127}); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(TenantSpec{Name: "starved", Weight: 1}); err != nil {
		t.Fatal(err)
	}
	// starved's share is 2 MiB/s / 128 = 16 KiB/s: 2 MiB would take ~2min.
	done := make(chan error, 1)
	start := time.Now()
	go func() { done <- r.Take("starved", "write", 2<<20) }()
	time.Sleep(20 * time.Millisecond)
	if !r.Remove("hog") { // starved now owns the whole 2 MiB/s budget
		t.Fatal("Remove hog")
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("waiter still paced at pre-rebalance share")
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("2 MiB after rebalance to 2 MiB/s took %v", d)
	}
}

func TestTakeConcurrentWithChurn(t *testing.T) {
	r := NewRegistry(Options{TotalBandwidth: 1 << 30})
	defer r.Close()
	for i := 0; i < 4; i++ {
		if err := r.Add(TenantSpec{Name: fmt.Sprintf("t%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := fmt.Sprintf("t%d", g%4)
			for i := 0; i < 50; i++ {
				if err := r.Take(name, "write", 4<<10); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			r.Add(TenantSpec{Name: "churn", Weight: float64(i%3) + 1})
			r.Remove("churn")
		}
	}()
	wg.Wait()
}

// seriesCount returns how many series of family name carry each label
// value of key, plus the total.
func seriesByLabel(reg *obs.Registry, family, key string) (map[string]int, int) {
	out := make(map[string]int)
	total := 0
	for _, f := range reg.Snapshot() {
		if f.Name != family {
			continue
		}
		for _, s := range f.Series {
			total++
			out[s.Labels.Get(key)]++
		}
	}
	return out, total
}

// TestTenantLabelCardinalityBounded is the per-tenant label contract:
// with more tenants than the per-family series cap, the cap holds and
// overflow tenants aggregate into the "other" label instead of dropping
// silently.
func TestTenantLabelCardinalityBounded(t *testing.T) {
	reg := obs.NewRegistry()
	const cap = 8
	r := NewRegistry(Options{Obs: reg, MaxTenantSeries: cap})
	const tenants = 3 * cap
	for i := 0; i < tenants; i++ {
		name := fmt.Sprintf("tenant-%02d", i)
		if err := r.Add(TenantSpec{Name: name}); err != nil {
			t.Fatal(err)
		}
		if err := r.Take(name, "write", 100); err != nil {
			t.Fatal(err)
		}
	}
	byTenant, total := seriesByLabel(reg, "memfss_qos_bytes_total", "tenant")
	if total > cap+1 {
		t.Fatalf("memfss_qos_bytes_total{op=write} has %d series, cap is %d tenants + other", total, cap)
	}
	if byTenant[overflowLabel] == 0 {
		t.Fatal("no \"other\" series: overflow tenants were dropped, not aggregated")
	}
	// Nothing dropped silently: every byte is accounted — cap tenants
	// under their own label, the rest under "other".
	var sum int64
	for _, f := range reg.Snapshot() {
		if f.Name != "memfss_qos_bytes_total" {
			continue
		}
		for _, s := range f.Series {
			sum += s.Value
		}
	}
	if want := int64(tenants * 100); sum != want {
		t.Fatalf("bytes accounted = %d, want %d (overflow traffic lost)", sum, want)
	}
	if reg.DroppedSeries() != 0 {
		t.Fatalf("obs registry dropped %d series; qos must cap below the registry backstop", reg.DroppedSeries())
	}
	// The wait histograms obey the same bound.
	for i := 0; i < tenants; i++ {
		r.labels.labelFor(fmt.Sprintf("tenant-%02d", i))
	}
	if _, total := seriesByLabel(reg, "memfss_qos_sched_wait_seconds", "tenant"); total > cap+1 {
		t.Fatalf("wait histogram has %d series, want <= %d", total, cap+1)
	}
	// A capped tenant's label is stable across calls.
	if a, b := r.labels.labelFor("tenant-30"), r.labels.labelFor("tenant-30"); a != b || a != overflowLabel {
		t.Fatalf("overflow label unstable: %q then %q", a, b)
	}
}

func TestPriorityFor(t *testing.T) {
	r := NewRegistry(Options{})
	r.Add(TenantSpec{Name: "batch", Priority: PriorityLow})
	r.Add(TenantSpec{Name: "prod", Priority: PriorityHigh})
	cases := map[string]Priority{
		TenantRoot("batch") + "/f": PriorityLow,
		TenantRoot("prod") + "/f":  PriorityHigh,
		"/scratch/f":               PriorityNormal,
		TenantRoot("ghost") + "/f": PriorityNormal,
	}
	for path, want := range cases {
		if got := r.PriorityFor(path); got != want {
			t.Errorf("PriorityFor(%q) = %v, want %v", path, got, want)
		}
	}
}

func TestQuotaRejectionCountedWithoutObs(t *testing.T) {
	r := NewRegistry(Options{})
	r.Add(TenantSpec{Name: "a", QuotaBytes: 10})
	r.Charge("a", 20)
	if got := r.quotaReject("a").Value(); got != 1 {
		t.Fatalf("quota rejections = %d, want 1", got)
	}
}
