package qos

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"memfss/internal/obs"
	"memfss/internal/obs/trace"
)

// This file is the lease marketplace: victims advertise harvestable
// capacity, the broker matches tenant demand to supply, and every lease
// carries an eviction-notice SLO — when the victim wants its memory back,
// lessees are guaranteed at least NoticeSLO of warning before their bytes
// start moving. Revocation rides the graduated Evacuate protocol through
// the Evacuator interface, and the SLO is enforced, measured, and
// reported (notice histogram + met/violated counters), which is what
// turns the paper's admin revocation verb into a contract tenants can
// plan around (Memtrade's broker, PAPERS.md).

// LeaseState is one lease's position in its lifecycle:
//
//	Active --(Revoke: notice given)--> Noticed --(evicted)--> Revoked
//	  \--(lessee returns it)--> Released
//
// Noticed leases may still be Released early (the lessee vacated during
// the notice window); Revoked and Released are terminal.
type LeaseState int

const (
	LeaseActive LeaseState = iota
	LeaseNoticed
	LeaseRevoked
	LeaseReleased
)

// String names the state for logs and tables.
func (s LeaseState) String() string {
	switch s {
	case LeaseActive:
		return "active"
	case LeaseNoticed:
		return "noticed"
	case LeaseRevoked:
		return "revoked"
	case LeaseReleased:
		return "released"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Offer is one victim node's advertised supply: harvestable bytes plus
// the eviction notice the victim is willing to guarantee.
type Offer struct {
	Node      string
	Bytes     int64
	NoticeSLO time.Duration
}

// Lease is one granted claim on a victim's offer.
type Lease struct {
	ID        string
	Tenant    string
	Node      string
	Bytes     int64
	NoticeSLO time.Duration
	State     LeaseState
	GrantedAt time.Time
	NoticedAt time.Time // zero until notice is given
	EndedAt   time.Time // zero until Revoked/Released
}

// Evacuator drains a victim node within a deadline — implemented by
// core.FileSystem (EvacuateLeased), which runs the phased fence → drain →
// detach → sweep → release protocol.
type Evacuator interface {
	EvacuateLeased(ctx context.Context, node string, deadline time.Duration) error
}

// RevokeReport describes one node revocation through the broker.
type RevokeReport struct {
	Node      string
	Leases    int           // leases that were given notice
	SLO       time.Duration // strictest (largest) NoticeSLO among them
	Notice    time.Duration // notice actually delivered before eviction began
	SLOMet    bool          // Notice >= SLO (vacuously true with no leases)
	Evacuated bool          // the Evacuator ran (false without one)
	Elapsed   time.Duration
}

// RevokeOptions tunes one revocation.
type RevokeOptions struct {
	// EvacDeadline bounds the post-notice evacuation (0 = the Evacuator's
	// default, i.e. core's configured Evac.Deadline).
	EvacDeadline time.Duration
	// Force skips the remaining notice window: eviction starts
	// immediately and the SLO is recorded as violated for any lease whose
	// notice fell short. This is the "tenant pulled the plug" path — the
	// accounting exists precisely so these show up.
	Force bool
}

// BrokerOptions configures a Broker.
type BrokerOptions struct {
	// Evac runs revocation evictions; nil degrades Revoke to bookkeeping
	// (state transitions and SLO accounting without data movement).
	Evac Evacuator
	// Obs receives the lease metric families.
	Obs *obs.Registry
	// Journal, when set, receives lease lifecycle events (advertise,
	// grant, release, revoke with SLO outcome) in the cluster flight
	// recorder.
	Journal *trace.Journal
	// PollInterval is the notice-window poll cadence (default 20ms):
	// Revoke wakes this often to notice early releases and context
	// cancellation while it waits out the notice.
	PollInterval time.Duration
}

// offerState tracks one node's supply and how much of it is leased.
type offerState struct {
	offer  Offer
	leased int64
}

// Broker matches tenant demand to victim supply and enforces the
// eviction-notice SLO on the way back out.
type Broker struct {
	opts BrokerOptions

	mu     sync.Mutex
	offers map[string]*offerState
	leases map[string]*Lease
	seq    int64

	// Injectable clock for deterministic SLO tests.
	now   func() time.Time
	sleep func(time.Duration)

	granted     *obs.Counter
	revokedMet  *obs.Counter
	revokedMiss *obs.Counter
	noticeHist  *obs.Histogram
}

// NewBroker builds a lease broker.
func NewBroker(opts BrokerOptions) *Broker {
	if opts.PollInterval <= 0 {
		opts.PollInterval = 20 * time.Millisecond
	}
	b := &Broker{
		opts:   opts,
		offers: make(map[string]*offerState),
		leases: make(map[string]*Lease),
		now:    time.Now,
		sleep:  time.Sleep,
	}
	if reg := opts.Obs; reg != nil {
		b.granted = reg.Counter("memfss_qos_leases_granted_total",
			"Leases granted on advertised victim capacity.", nil)
		b.revokedMet = reg.Counter("memfss_qos_lease_revocations_total",
			"Lease revocations by eviction-notice SLO outcome.", obs.L("outcome", "met"))
		b.revokedMiss = reg.Counter("memfss_qos_lease_revocations_total",
			"Lease revocations by eviction-notice SLO outcome.", obs.L("outcome", "violated"))
		b.noticeHist = reg.Histogram("memfss_qos_lease_notice_seconds",
			"Eviction notice actually delivered to lessees before their data moved.",
			nil, obs.DefSlowBuckets)
		reg.Gauge("memfss_qos_leases_active",
			"Leases currently active or in their notice window.", nil, func() float64 {
				b.mu.Lock()
				defer b.mu.Unlock()
				n := 0
				for _, l := range b.leases {
					if l.State == LeaseActive || l.State == LeaseNoticed {
						n++
					}
				}
				return float64(n)
			})
		reg.Gauge("memfss_qos_supply_bytes",
			"Advertised victim capacity not yet leased.", nil, func() float64 {
				b.mu.Lock()
				defer b.mu.Unlock()
				var free int64
				for _, o := range b.offers {
					free += o.offer.Bytes - o.leased
				}
				return float64(free)
			})
	}
	return b
}

// Advertise publishes (or refreshes) a victim node's harvestable
// capacity. Shrinking an offer below its already-leased bytes is allowed
// — existing leases stand, the node just stops matching new demand.
func (b *Broker) Advertise(o Offer) error {
	if o.Node == "" {
		return errors.New("qos: offer needs a node")
	}
	if o.Bytes < 0 || o.NoticeSLO < 0 {
		return fmt.Errorf("qos: negative offer %+v", o)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if cur, ok := b.offers[o.Node]; ok {
		cur.offer = o
		b.opts.Journal.Note("lease", o.Node,
			fmt.Sprintf("offer refreshed: %d bytes, notice SLO %s", o.Bytes, o.NoticeSLO), 0)
		return nil
	}
	b.offers[o.Node] = &offerState{offer: o}
	b.opts.Journal.Note("lease", o.Node,
		fmt.Sprintf("advertised %d bytes, notice SLO %s", o.Bytes, o.NoticeSLO), 0)
	return nil
}

// Withdraw removes a node's offer. Existing leases on the node stand
// until released or revoked.
func (b *Broker) Withdraw(node string) {
	b.mu.Lock()
	delete(b.offers, node)
	b.mu.Unlock()
	b.opts.Journal.Note("lease", node, "offer withdrawn", 0)
}

// Supply lists current offers sorted by node, with Bytes reduced to the
// unleased remainder.
func (b *Broker) Supply() []Offer {
	b.mu.Lock()
	out := make([]Offer, 0, len(b.offers))
	for _, o := range b.offers {
		free := o.offer.Bytes - o.leased
		if free < 0 {
			free = 0
		}
		out = append(out, Offer{Node: o.offer.Node, Bytes: free, NoticeSLO: o.offer.NoticeSLO})
	}
	b.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// Leases snapshots every lease, sorted by ID.
func (b *Broker) Leases() []Lease {
	b.mu.Lock()
	out := make([]Lease, 0, len(b.leases))
	for _, l := range b.leases {
		out = append(out, *l)
	}
	b.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ErrNoSupply reports demand no current offer can satisfy.
var ErrNoSupply = errors.New("qos: no offer with enough unleased capacity")

// Request matches a tenant's demand to supply and grants a lease. The
// match is best-fit-by-headroom: the offer with the most unleased bytes
// wins (spreading leases instead of piling them onto one victim whose
// revocation would then hit everyone).
func (b *Broker) Request(tenant string, bytes int64) (Lease, error) {
	if bytes <= 0 {
		return Lease{}, fmt.Errorf("qos: lease request for %d bytes", bytes)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	var best *offerState
	for _, o := range b.offers {
		free := o.offer.Bytes - o.leased
		if free < bytes {
			continue
		}
		if best == nil || free > best.offer.Bytes-best.leased ||
			(free == best.offer.Bytes-best.leased && o.offer.Node < best.offer.Node) {
			best = o
		}
	}
	if best == nil {
		b.opts.Journal.Record(trace.Event{Type: "lease", Tenant: tenant,
			Detail: fmt.Sprintf("request denied: no supply for %d bytes", bytes)})
		return Lease{}, fmt.Errorf("%w: %d bytes for tenant %s", ErrNoSupply, bytes, tenant)
	}
	best.leased += bytes
	b.seq++
	l := &Lease{
		ID:        "lease-" + strconv.FormatInt(b.seq, 10),
		Tenant:    tenant,
		Node:      best.offer.Node,
		Bytes:     bytes,
		NoticeSLO: best.offer.NoticeSLO,
		State:     LeaseActive,
		GrantedAt: b.now(),
	}
	b.leases[l.ID] = l
	if b.granted != nil {
		b.granted.Inc()
	}
	b.opts.Journal.Record(trace.Event{Type: "lease", Node: l.Node, Tenant: tenant,
		Detail: fmt.Sprintf("granted %s: %d bytes", l.ID, l.Bytes)})
	return *l, nil
}

// Release returns a lease's capacity to its offer; legal from Active or
// Noticed (vacating during the notice window is exactly what the notice
// is for).
func (b *Broker) Release(id string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	l, ok := b.leases[id]
	if !ok {
		return fmt.Errorf("qos: unknown lease %s", id)
	}
	if l.State != LeaseActive && l.State != LeaseNoticed {
		return fmt.Errorf("qos: lease %s is %s, not releasable", id, l.State)
	}
	l.State = LeaseReleased
	l.EndedAt = b.now()
	if o, ok := b.offers[l.Node]; ok {
		o.leased -= l.Bytes
		if o.leased < 0 {
			o.leased = 0
		}
	}
	b.opts.Journal.Record(trace.Event{Type: "lease", Node: l.Node, Tenant: l.Tenant,
		Detail: "released " + id})
	return nil
}

// Revoke takes a victim node back: every active lease on it is given
// eviction notice, the broker waits out the strictest NoticeSLO (leaving
// early only if every noticed lease is released first, or ctx is
// canceled, or opts.Force), and then the node is evacuated through the
// graduated Evacuate protocol. The notice actually delivered is measured
// against the SLO and reported — met or violated, never unaccounted.
func (b *Broker) Revoke(ctx context.Context, node string, opts RevokeOptions) (RevokeReport, error) {
	start := b.now()
	b.mu.Lock()
	var noticed []*Lease
	var slo time.Duration
	for _, l := range b.leases {
		if l.Node != node || l.State != LeaseActive {
			continue
		}
		l.State = LeaseNoticed
		l.NoticedAt = start
		noticed = append(noticed, l)
		if l.NoticeSLO > slo {
			slo = l.NoticeSLO
		}
	}
	delete(b.offers, node) // no new leases on a node being reclaimed
	b.mu.Unlock()

	rep := RevokeReport{Node: node, Leases: len(noticed), SLO: slo}

	// Wait out the notice window. Early exits: all lessees vacated, the
	// caller forced immediate eviction, or the context died.
	var waitErr error
	if !opts.Force {
	wait:
		for b.now().Sub(start) < slo {
			if err := ctx.Err(); err != nil {
				waitErr = err
				break
			}
			b.mu.Lock()
			pending := 0
			for _, l := range noticed {
				if l.State == LeaseNoticed {
					pending++
				}
			}
			b.mu.Unlock()
			if pending == 0 {
				break wait
			}
			d := slo - b.now().Sub(start)
			if d > b.opts.PollInterval {
				d = b.opts.PollInterval
			}
			b.sleep(d)
		}
	}

	// Eviction begins now; the notice delivered is what the clock says.
	rep.Notice = b.now().Sub(start)
	rep.SLOMet = true
	var evacErr error
	if b.opts.Evac != nil && waitErr == nil {
		evacErr = b.opts.Evac.EvacuateLeased(ctx, node, opts.EvacDeadline)
		rep.Evacuated = evacErr == nil
	}

	b.mu.Lock()
	end := b.now()
	for _, l := range noticed {
		if l.State != LeaseNoticed {
			continue // released during the window; its SLO question is moot
		}
		l.State = LeaseRevoked
		l.EndedAt = end
		met := rep.Notice >= l.NoticeSLO
		if !met {
			rep.SLOMet = false
		}
		switch {
		case met && b.revokedMet != nil:
			b.revokedMet.Inc()
		case !met && b.revokedMiss != nil:
			b.revokedMiss.Inc()
		}
		if b.noticeHist != nil {
			b.noticeHist.Observe(rep.Notice)
		}
		outcome := "met"
		if !met {
			outcome = "violated"
		}
		b.opts.Journal.Record(trace.Event{Type: "lease", Node: node, Tenant: l.Tenant,
			Detail: fmt.Sprintf("revoked %s: notice %s vs SLO %s (%s)",
				l.ID, rep.Notice.Round(time.Millisecond), l.NoticeSLO, outcome)})
	}
	b.mu.Unlock()
	rep.Elapsed = b.now().Sub(start)
	if waitErr != nil {
		return rep, fmt.Errorf("qos: revoke %s: notice window: %w", node, waitErr)
	}
	if evacErr != nil {
		return rep, fmt.Errorf("qos: revoke %s: evacuate: %w", node, evacErr)
	}
	return rep, nil
}
