package qos

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"memfss/internal/obs"
)

// brokerClock drives a Broker deterministically: Sleep advances Now, so
// Revoke's notice window elapses synchronously inside the test.
type brokerClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *brokerClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *brokerClock) Sleep(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func newFakeBroker(opts BrokerOptions) (*Broker, *brokerClock) {
	b := NewBroker(opts)
	clk := &brokerClock{now: time.Unix(2000, 0)}
	b.now = clk.Now
	b.sleep = clk.Sleep
	return b, clk
}

// recordingEvac remembers the calls the broker makes on eviction.
type recordingEvac struct {
	mu       sync.Mutex
	nodes    []string
	deadline time.Duration
	err      error
}

func (e *recordingEvac) EvacuateLeased(_ context.Context, node string, deadline time.Duration) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.nodes = append(e.nodes, node)
	e.deadline = deadline
	return e.err
}

func seriesValue(reg *obs.Registry, family, label, value string) int64 {
	for _, f := range reg.Snapshot() {
		if f.Name != family {
			continue
		}
		for _, s := range f.Series {
			if label == "" || s.Labels.Get(label) == value {
				return s.Value
			}
		}
	}
	return 0
}

func gaugeValue(reg *obs.Registry, family string) float64 {
	for _, f := range reg.Snapshot() {
		if f.Name == family {
			for _, s := range f.Series {
				return s.Gauge
			}
		}
	}
	return 0
}

func TestAdvertiseValidation(t *testing.T) {
	b := NewBroker(BrokerOptions{})
	if err := b.Advertise(Offer{Node: "", Bytes: 1}); err == nil {
		t.Error("empty node accepted")
	}
	if err := b.Advertise(Offer{Node: "v1", Bytes: -1}); err == nil {
		t.Error("negative bytes accepted")
	}
	if err := b.Advertise(Offer{Node: "v1", Bytes: 1, NoticeSLO: -time.Second}); err == nil {
		t.Error("negative SLO accepted")
	}
	if err := b.Advertise(Offer{Node: "v1", Bytes: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRequestMatchingAndSupply(t *testing.T) {
	b, _ := newFakeBroker(BrokerOptions{})
	for node, bytes := range map[string]int64{"v1": 100, "v2": 300} {
		if err := b.Advertise(Offer{Node: node, Bytes: bytes, NoticeSLO: time.Second}); err != nil {
			t.Fatal(err)
		}
	}
	// Best fit by headroom: v2 has the most unleased bytes.
	l1, err := b.Request("a", 50)
	if err != nil {
		t.Fatal(err)
	}
	if l1.Node != "v2" {
		t.Fatalf("first lease on %s, want v2 (most headroom)", l1.Node)
	}
	if l1.NoticeSLO != time.Second || l1.State != LeaseActive {
		t.Fatalf("lease %+v missing offer terms", l1)
	}
	// v2 now has 250 free, still the best fit.
	l2, err := b.Request("a", 200)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Node != "v2" {
		t.Fatalf("second lease on %s, want v2", l2.Node)
	}
	// 50 free on v2, 100 on v1: only v1 fits 80.
	l3, err := b.Request("b", 80)
	if err != nil {
		t.Fatal(err)
	}
	if l3.Node != "v1" {
		t.Fatalf("third lease on %s, want v1", l3.Node)
	}
	if _, err := b.Request("b", 60); !errors.Is(err, ErrNoSupply) {
		t.Fatalf("oversized request: %v, want ErrNoSupply", err)
	}
	if _, err := b.Request("b", 0); err == nil {
		t.Fatal("zero-byte request accepted")
	}
	sup := b.Supply()
	if len(sup) != 2 || sup[0].Node != "v1" || sup[0].Bytes != 20 || sup[1].Bytes != 50 {
		t.Fatalf("supply = %+v", sup)
	}
	// Release returns capacity to its offer.
	if err := b.Release(l2.ID); err != nil {
		t.Fatal(err)
	}
	if sup := b.Supply(); sup[1].Bytes != 250 {
		t.Fatalf("supply after release = %+v", sup)
	}
	if err := b.Release(l2.ID); err == nil {
		t.Fatal("double release accepted")
	}
	if err := b.Release("lease-999"); err == nil {
		t.Fatal("unknown lease released")
	}
	// Withdraw stops new matches; the live lease stands.
	b.Withdraw("v1")
	if _, err := b.Request("b", 10); err != nil && len(b.Supply()) != 1 {
		t.Fatalf("withdraw: supply=%+v err=%v", b.Supply(), err)
	}
	for _, l := range b.Leases() {
		if l.ID == l3.ID && l.State != LeaseActive {
			t.Fatalf("lease on withdrawn node became %s", l.State)
		}
	}
}

func TestRevokeMeetsNoticeSLO(t *testing.T) {
	reg := obs.NewRegistry()
	evac := &recordingEvac{}
	b, clk := newFakeBroker(BrokerOptions{Evac: evac, Obs: reg})
	const slo = 5 * time.Second
	if err := b.Advertise(Offer{Node: "v1", Bytes: 1 << 20, NoticeSLO: slo}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Request("hpc", 1<<19); err != nil {
		t.Fatal(err)
	}
	if got := gaugeValue(reg, "memfss_qos_leases_active"); got != 1 {
		t.Fatalf("active gauge = %v", got)
	}
	start := clk.Now()
	rep, err := b.Revoke(context.Background(), "v1", RevokeOptions{EvacDeadline: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Leases != 1 || rep.SLO != slo {
		t.Fatalf("report %+v", rep)
	}
	if !rep.SLOMet || rep.Notice < slo {
		t.Fatalf("notice %v < SLO %v (report %+v)", rep.Notice, slo, rep)
	}
	if clk.Now().Sub(start) < slo {
		t.Fatalf("revocation finished %v after start, before the %v notice elapsed", clk.Now().Sub(start), slo)
	}
	if !rep.Evacuated || len(evac.nodes) != 1 || evac.nodes[0] != "v1" || evac.deadline != 30*time.Second {
		t.Fatalf("evacuator calls: %+v deadline=%v", evac.nodes, evac.deadline)
	}
	if got := seriesValue(reg, "memfss_qos_lease_revocations_total", "outcome", "met"); got != 1 {
		t.Fatalf("met revocations = %d", got)
	}
	if got := seriesValue(reg, "memfss_qos_lease_revocations_total", "outcome", "violated"); got != 0 {
		t.Fatalf("violated revocations = %d", got)
	}
	ls := b.Leases()
	if len(ls) != 1 || ls[0].State != LeaseRevoked || ls[0].EndedAt.IsZero() {
		t.Fatalf("lease after revoke: %+v", ls)
	}
	// The offer is gone: the node is being reclaimed.
	if len(b.Supply()) != 0 {
		t.Fatalf("revoked node still advertised: %+v", b.Supply())
	}
	if got := gaugeValue(reg, "memfss_qos_leases_active"); got != 0 {
		t.Fatalf("active gauge after revoke = %v", got)
	}
}

func TestRevokeForceViolatesSLO(t *testing.T) {
	reg := obs.NewRegistry()
	b, clk := newFakeBroker(BrokerOptions{Obs: reg})
	if err := b.Advertise(Offer{Node: "v1", Bytes: 100, NoticeSLO: time.Minute}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Request("batch", 10); err != nil {
		t.Fatal(err)
	}
	start := clk.Now()
	rep, err := b.Revoke(context.Background(), "v1", RevokeOptions{Force: true})
	if err != nil {
		t.Fatal(err)
	}
	if clk.Now().Sub(start) != 0 {
		t.Fatalf("force revoke waited %v", clk.Now().Sub(start))
	}
	if rep.SLOMet || rep.Notice >= time.Minute {
		t.Fatalf("forced revoke reported SLO met: %+v", rep)
	}
	if got := seriesValue(reg, "memfss_qos_lease_revocations_total", "outcome", "violated"); got != 1 {
		t.Fatalf("violated revocations = %d", got)
	}
	if got := seriesValue(reg, "memfss_qos_lease_revocations_total", "outcome", "met"); got != 0 {
		t.Fatalf("met revocations = %d", got)
	}
}

func TestRevokeEndsEarlyWhenLesseesVacate(t *testing.T) {
	b, clk := newFakeBroker(BrokerOptions{})
	if err := b.Advertise(Offer{Node: "v1", Bytes: 100, NoticeSLO: time.Hour}); err != nil {
		t.Fatal(err)
	}
	l, err := b.Request("hpc", 10)
	if err != nil {
		t.Fatal(err)
	}
	// The lessee vacates during the notice window (after the first poll).
	released := false
	b.sleep = func(d time.Duration) {
		if !released {
			released = true
			if err := b.Release(l.ID); err != nil {
				t.Error(err)
			}
		}
		clk.Sleep(d)
	}
	start := clk.Now()
	rep, err := b.Revoke(context.Background(), "v1", RevokeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d := clk.Now().Sub(start); d >= time.Hour {
		t.Fatalf("revoke waited the full window (%v) despite early release", d)
	}
	// The released lease has no SLO grievance: nothing counted against it.
	if !rep.SLOMet {
		t.Fatalf("early release reported as violation: %+v", rep)
	}
	ls := b.Leases()
	if len(ls) != 1 || ls[0].State != LeaseReleased {
		t.Fatalf("lease after early release: %+v", ls)
	}
}

func TestRevokeCanceledContext(t *testing.T) {
	evac := &recordingEvac{}
	b, _ := newFakeBroker(BrokerOptions{Evac: evac})
	if err := b.Advertise(Offer{Node: "v1", Bytes: 100, NoticeSLO: time.Minute}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Request("hpc", 10); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := b.Revoke(ctx, "v1", RevokeOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("revoke on dead context: %v", err)
	}
	if len(evac.nodes) != 0 {
		t.Fatal("evacuator ran despite canceled notice window")
	}
}

func TestRevokeEvacErrorPropagates(t *testing.T) {
	evac := &recordingEvac{err: errors.New("drain stalled")}
	b, _ := newFakeBroker(BrokerOptions{Evac: evac})
	if err := b.Advertise(Offer{Node: "v1", Bytes: 100}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Request("hpc", 10); err != nil {
		t.Fatal(err)
	}
	rep, err := b.Revoke(context.Background(), "v1", RevokeOptions{})
	if err == nil || !errors.Is(err, evac.err) {
		t.Fatalf("evac error lost: %v", err)
	}
	if rep.Evacuated {
		t.Fatal("failed evacuation reported as done")
	}
}

func TestRevokeEmptyNode(t *testing.T) {
	b, clk := newFakeBroker(BrokerOptions{})
	start := clk.Now()
	rep, err := b.Revoke(context.Background(), "ghost", RevokeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Leases != 0 || !rep.SLOMet || clk.Now() != start {
		t.Fatalf("no-lease revoke: %+v", rep)
	}
}

func TestLeaseIDsUnique(t *testing.T) {
	b, _ := newFakeBroker(BrokerOptions{})
	if err := b.Advertise(Offer{Node: "v1", Bytes: 1 << 30}); err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		l, err := b.Request(fmt.Sprintf("t%d", i%3), 1)
		if err != nil {
			t.Fatal(err)
		}
		if seen[l.ID] {
			t.Fatalf("duplicate lease ID %s", l.ID)
		}
		seen[l.ID] = true
	}
}
