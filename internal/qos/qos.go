// Package qos turns the flat scavenged store into a multi-tenant economy
// (Memtrade/Memshare direction; see PAPERS.md): tenants get namespaces,
// memory quotas, weighted-fair bandwidth shares, and priority classes that
// order reclamation under pressure, while victim capacity is brokered as
// leases carrying an eviction-notice SLO (lease.go).
//
// The package is deliberately below internal/core in the import graph:
// core threads a *Registry through its data path (attribution, quota,
// pacing) and the Broker calls back into core only through the small
// Evacuator interface, so the marketplace rides the graduated revocation
// protocol without an import cycle.
package qos

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"memfss/internal/container"
	"memfss/internal/obs"
)

// Priority orders tenants for reclamation: when a store runs out of space
// or reports pressure, lower-priority tenants' data drains first, so a
// high-priority tenant only degrades after everything cheaper is gone.
type Priority int

const (
	// PriorityLow data is first out under pressure.
	PriorityLow Priority = iota
	// PriorityNormal is the default, and the class of unattributed data.
	PriorityNormal
	// PriorityHigh data drains only when nothing lower remains.
	PriorityHigh
)

// String names the priority for flags, logs, and metric labels.
func (p Priority) String() string {
	switch p {
	case PriorityLow:
		return "low"
	case PriorityNormal:
		return "normal"
	case PriorityHigh:
		return "high"
	}
	return fmt.Sprintf("priority(%d)", int(p))
}

// ParsePriority is the inverse of String, for CLI flags.
func ParsePriority(s string) (Priority, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "low":
		return PriorityLow, nil
	case "", "normal":
		return PriorityNormal, nil
	case "high":
		return PriorityHigh, nil
	}
	return PriorityNormal, fmt.Errorf("qos: unknown priority %q (want low|normal|high)", s)
}

// ErrQuotaExceeded rejects a write that would grow a tenant past its
// memory quota. It is a store-of-record answer, not unavailability: the
// same write fails identically on every replica until the tenant frees
// space, so callers must not retry it.
var ErrQuotaExceeded = errors.New("qos: tenant memory quota exceeded")

// ErrUnknownTenant reports an operation naming a tenant the registry has
// never seen.
var ErrUnknownTenant = errors.New("qos: unknown tenant")

// TenantRootDir is the namespace directory tenant trees live under.
// Attribution is by path prefix: everything below TenantRootDir/<name>
// belongs to tenant <name>; everything else is unattributed.
const TenantRootDir = "/tenants"

// TenantRoot returns the namespace root of one tenant.
func TenantRoot(name string) string { return TenantRootDir + "/" + name }

// TenantSpec declares one tenant.
type TenantSpec struct {
	// Name identifies the tenant; it is also the namespace directory name
	// under TenantRootDir, so it must be a single path element.
	Name string `json:"name"`
	// QuotaBytes caps the tenant's total file bytes (0 = unlimited).
	QuotaBytes int64 `json:"quota_bytes"`
	// Weight is the tenant's share of the aggregate bandwidth budget
	// (default 1). Shares are strict reservations — rate_i = total *
	// w_i/Σw over all registered tenants — so one tenant's saturation
	// cannot eat into another's share.
	Weight float64 `json:"weight"`
	// Priority orders reclamation; see Priority.
	Priority Priority `json:"priority"`
}

// Validate reports whether the spec is well-formed.
func (s TenantSpec) Validate() error {
	if s.Name == "" || strings.ContainsAny(s.Name, "/ \t\n") {
		return fmt.Errorf("qos: tenant name %q must be a single non-empty path element", s.Name)
	}
	if s.QuotaBytes < 0 {
		return fmt.Errorf("qos: tenant %s: negative quota %d", s.Name, s.QuotaBytes)
	}
	if s.Weight < 0 {
		return fmt.Errorf("qos: tenant %s: negative weight %v", s.Name, s.Weight)
	}
	if s.Priority < PriorityLow || s.Priority > PriorityHigh {
		return fmt.Errorf("qos: tenant %s: unknown priority %d", s.Name, int(s.Priority))
	}
	return nil
}

// Options configures a Registry.
type Options struct {
	// TotalBandwidth is the aggregate scavenging-bandwidth budget in
	// bytes/sec, split across tenants by weight. 0 disables pacing
	// entirely (attribution and quotas still apply).
	TotalBandwidth int64
	// Obs, when set, receives the per-tenant metric families. Per-tenant
	// label cardinality is bounded by MaxTenantSeries; overflow tenants
	// aggregate into the "other" label value instead of dropping.
	Obs *obs.Registry
	// MaxTenantSeries caps how many distinct tenants get their own label
	// value (default 32).
	MaxTenantSeries int
}

// tenantState is one tenant's live accounting.
type tenantState struct {
	spec TenantSpec
	used atomic.Int64         // quota accounting: bytes of file data attributed
	th   *container.Throttle  // bandwidth share; nil when pacing is off
}

// Registry is the tenant directory plus the weighted-fair bandwidth
// scheduler in front of the store clients. A nil *Registry is a valid
// no-op: every method admits immediately and attributes nothing — the
// single-tenant deployments of earlier PRs are the nil case.
type Registry struct {
	opts Options

	mu      sync.RWMutex
	tenants map[string]*tenantState

	labels *labelMap

	// Lazily-registered per-tenant series (bounded by labels).
	bytesCounters sync.Map // label+"/"+op -> *obs.Counter
	waitHists     sync.Map // label -> *obs.Histogram
	quotaRejects  sync.Map // label -> *obs.Counter
	reclaims      sync.Map // priority -> *obs.Counter
}

// NewRegistry builds a tenant registry.
func NewRegistry(opts Options) *Registry {
	if opts.MaxTenantSeries <= 0 {
		opts.MaxTenantSeries = defaultMaxTenantSeries
	}
	r := &Registry{
		opts:    opts,
		tenants: make(map[string]*tenantState),
		labels:  newLabelMap(opts.MaxTenantSeries),
	}
	if opts.Obs != nil {
		opts.Obs.Gauge("memfss_qos_tenants",
			"Registered tenants.", nil, func() float64 {
				r.mu.RLock()
				defer r.mu.RUnlock()
				return float64(len(r.tenants))
			})
	}
	return r
}

// Add registers a tenant, or updates its spec if the name is already
// registered (quota usage carries over). Bandwidth shares of every tenant
// are recomputed; blocked waiters observe their new rate on the next
// wake-up (container.Throttle.SetRate).
func (r *Registry) Add(spec TenantSpec) error {
	if r == nil {
		return errors.New("qos: nil registry")
	}
	if err := spec.Validate(); err != nil {
		return err
	}
	if spec.Weight == 0 {
		spec.Weight = 1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if ts, ok := r.tenants[spec.Name]; ok {
		ts.spec = spec
	} else {
		r.tenants[spec.Name] = &tenantState{spec: spec}
	}
	r.rebalanceLocked()
	return nil
}

// Remove unregisters a tenant and recomputes the remaining shares. Its
// label slot is not reclaimed (cardinality stays monotonic by design).
func (r *Registry) Remove(name string) bool {
	if r == nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ts, ok := r.tenants[name]
	if !ok {
		return false
	}
	delete(r.tenants, name)
	ts.th.Close()
	ts.th = nil
	r.rebalanceLocked()
	return true
}

// rebalanceLocked recomputes every tenant's strict bandwidth share:
// rate_i = TotalBandwidth * w_i / Σw. Existing throttles are resized in
// place so waiters blocked mid-Take pick up the new rate.
func (r *Registry) rebalanceLocked() {
	total := r.opts.TotalBandwidth
	if total <= 0 {
		return
	}
	var sum float64
	for _, ts := range r.tenants {
		sum += ts.spec.Weight
	}
	if sum <= 0 {
		return
	}
	for _, ts := range r.tenants {
		rate := int64(float64(total) * ts.spec.Weight / sum)
		if rate < 1 {
			rate = 1
		}
		if ts.th == nil {
			th, err := container.NewThrottle(rate)
			if err != nil {
				continue
			}
			ts.th = th
		} else if err := ts.th.SetRate(rate); err != nil {
			// A closed throttle (racing Remove) stays closed.
			continue
		}
	}
}

// Get returns a tenant's spec.
func (r *Registry) Get(name string) (TenantSpec, bool) {
	if r == nil {
		return TenantSpec{}, false
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	ts, ok := r.tenants[name]
	if !ok {
		return TenantSpec{}, false
	}
	return ts.spec, true
}

// List returns every tenant spec, sorted by name.
func (r *Registry) List() []TenantSpec {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	out := make([]TenantSpec, 0, len(r.tenants))
	for _, ts := range r.tenants {
		out = append(out, ts.spec)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Rate returns a tenant's current bandwidth share in bytes/sec (0 when
// pacing is off or the tenant is unknown).
func (r *Registry) Rate(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if ts, ok := r.tenants[name]; ok {
		return ts.th.Rate()
	}
	return 0
}

// ResolveTenant attributes a file-system path: TenantRootDir/<name>/...
// belongs to <name> when that tenant is registered; everything else is
// unattributed ("").
func (r *Registry) ResolveTenant(path string) string {
	if r == nil {
		return ""
	}
	rest, ok := strings.CutPrefix(path, TenantRootDir+"/")
	if !ok {
		return ""
	}
	name := rest
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		name = rest[:i]
	}
	r.mu.RLock()
	_, registered := r.tenants[name]
	r.mu.RUnlock()
	if !registered {
		return ""
	}
	return name
}

// PriorityFor returns the reclamation priority of a path's owner.
// Unattributed data is PriorityNormal: scavenged space must stay usable
// without tenant bookkeeping, and normal keeps legacy data from being
// either the first sacrifice or a squatter that never drains.
func (r *Registry) PriorityFor(path string) Priority {
	if r == nil {
		return PriorityNormal
	}
	name := r.ResolveTenant(path)
	if name == "" {
		return PriorityNormal
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if ts, ok := r.tenants[name]; ok {
		return ts.spec.Priority
	}
	return PriorityNormal
}

// Charge reserves n bytes of a tenant's quota, rejecting with
// ErrQuotaExceeded when the reservation would cross it. Unattributed
// ("") charges always succeed. Concurrent writers race the check
// optimistically: the add is atomic and rolled back on rejection, so the
// quota can overshoot by at most the in-flight writes of one race window.
func (r *Registry) Charge(name string, n int64) error {
	if r == nil || name == "" || n <= 0 {
		return nil
	}
	r.mu.RLock()
	ts := r.tenants[name]
	r.mu.RUnlock()
	if ts == nil {
		return fmt.Errorf("%w: %s", ErrUnknownTenant, name)
	}
	if q := ts.spec.QuotaBytes; q > 0 && ts.used.Add(n) > q {
		ts.used.Add(-n)
		r.quotaReject(name).Inc()
		return fmt.Errorf("%w: tenant %s (quota %d bytes)", ErrQuotaExceeded, name, q)
	}
	return nil
}

// Credit returns n bytes to a tenant's quota (file removal, truncation,
// rolled-back writes). The floor is 0: double credits must not bank
// negative usage a later charge could spend.
func (r *Registry) Credit(name string, n int64) {
	if r == nil || name == "" || n <= 0 {
		return
	}
	r.mu.RLock()
	ts := r.tenants[name]
	r.mu.RUnlock()
	if ts == nil {
		return
	}
	if v := ts.used.Add(-n); v < 0 {
		// Clamp; a concurrent charge that lands between the add and the
		// store re-reserves correctly because Charge re-checks the sum.
		ts.used.CompareAndSwap(v, 0)
	}
}

// SetUsed overwrites a tenant's quota usage unconditionally — the
// restart-priming path: a fresh registry knows nothing about bytes
// written by previous processes, so the embedder walks the tenant's
// namespace once and installs the durable total here. No quota check:
// existing data is a fact, not a request.
func (r *Registry) SetUsed(name string, n int64) {
	if r == nil || name == "" {
		return
	}
	if n < 0 {
		n = 0
	}
	r.mu.RLock()
	ts := r.tenants[name]
	r.mu.RUnlock()
	if ts != nil {
		ts.used.Store(n)
	}
}

// Used returns a tenant's current quota usage in bytes.
func (r *Registry) Used(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if ts, ok := r.tenants[name]; ok {
		return ts.used.Load()
	}
	return 0
}

// Take meters n bytes of tenant traffic for op ("read"/"write"): the
// per-tenant bytes counter always counts, and when pacing is on the call
// blocks until the tenant's weighted-fair share admits the bytes. A nil
// registry, unattributed traffic, and unregistered tenants admit
// immediately — QoS never makes single-tenant deployments slower.
func (r *Registry) Take(name, op string, n int64) error {
	if r == nil || n <= 0 {
		return nil
	}
	r.mu.RLock()
	ts := r.tenants[name]
	r.mu.RUnlock()
	label := unattributedLabel
	if name != "" {
		label = r.labels.labelFor(name)
	}
	if c := r.bytesCounter(label, op); c != nil {
		c.Add(n)
	}
	if ts == nil || ts.th == nil {
		return nil
	}
	if h := r.waitHist(label); h != nil {
		start := time.Now()
		err := ts.th.Take(n)
		h.Observe(time.Since(start))
		return err
	}
	return ts.th.Take(n)
}

// NoteReclaim counts keys drained off pressured stores on behalf of the
// priority-ordered reclamation path.
func (r *Registry) NoteReclaim(p Priority, keys int) {
	if r == nil || keys <= 0 || r.opts.Obs == nil {
		return
	}
	if c, ok := r.reclaims.Load(p); ok {
		c.(*obs.Counter).Add(int64(keys))
		return
	}
	c := r.opts.Obs.Counter("memfss_qos_reclaimed_keys_total",
		"Data keys drained off pressured stores, by owner priority (low drains first).",
		obs.L("priority", p.String()))
	r.reclaims.Store(p, c)
	c.Add(int64(keys))
}

// Close releases every tenant's throttle, unblocking paced waiters with
// container.ErrThrottleClosed.
func (r *Registry) Close() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, ts := range r.tenants {
		ts.th.Close()
	}
}

// unattributedLabel is the metric label value for traffic outside every
// tenant namespace.
const unattributedLabel = "none"

// bytesCounter resolves the per-tenant traffic counter (nil without obs).
func (r *Registry) bytesCounter(label, op string) *obs.Counter {
	if r.opts.Obs == nil {
		return nil
	}
	key := label + "/" + op
	if c, ok := r.bytesCounters.Load(key); ok {
		return c.(*obs.Counter)
	}
	c := r.opts.Obs.Counter("memfss_qos_bytes_total",
		"Payload bytes through the data path, attributed per tenant (overflow tenants aggregate as \"other\").",
		obs.L("tenant", label, "op", op))
	r.bytesCounters.Store(key, c)
	return c
}

// waitHist resolves the per-tenant scheduler-wait histogram (nil without
// obs) — the time writes/reads spent blocked on the tenant's bandwidth
// share, i.e. the price of fairness.
func (r *Registry) waitHist(label string) *obs.Histogram {
	if r.opts.Obs == nil {
		return nil
	}
	if h, ok := r.waitHists.Load(label); ok {
		return h.(*obs.Histogram)
	}
	h := r.opts.Obs.Histogram("memfss_qos_sched_wait_seconds",
		"Time operations spent blocked on the tenant's weighted-fair bandwidth share.",
		obs.L("tenant", label), nil)
	r.waitHists.Store(label, h)
	return h
}

// quotaReject resolves the per-tenant quota-rejection counter. Unlike the
// traffic series it still counts without obs (standalone counter) so
// tests and embedders can observe rejections either way.
func (r *Registry) quotaReject(name string) *obs.Counter {
	label := r.labels.labelFor(name)
	if c, ok := r.quotaRejects.Load(label); ok {
		return c.(*obs.Counter)
	}
	var c *obs.Counter
	if r.opts.Obs != nil {
		c = r.opts.Obs.Counter("memfss_qos_quota_rejections_total",
			"Writes rejected because they would grow a tenant past its memory quota.",
			obs.L("tenant", label))
	} else {
		c = obs.NewCounter()
	}
	r.quotaRejects.Store(label, c)
	return c
}
