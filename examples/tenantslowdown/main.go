// Tenant-slowdown example: measure what memory scavenging costs a tenant
// application — run one HPCC benchmark on the simulated victim nodes,
// first alone and then while MemFSS scavenges their memory under a dd
// write storm, and report the slowdown (one bar of the paper's Figure 3).
package main

import (
	"fmt"
	"log"

	"memfss/internal/cluster"
	"memfss/internal/sim"
	"memfss/internal/simstore"
	"memfss/internal/tenant"
	"memfss/internal/workflow"
)

// run executes benchmark b on 8 victim nodes; if scavenge is true, a dd
// bag loops on 2 own nodes, spreading 75% of its data over the victims.
func run(b tenant.Benchmark, scavenge bool) float64 {
	eng := &sim.Engine{}
	cls := cluster.New(eng)
	own := cls.AddNodes("own", 2, cluster.DAS5)
	victims := cls.AddNodes("victim", 8, cluster.DAS5)

	alpha := 1.0
	if scavenge {
		alpha = 0.25
	}
	fs, err := simstore.New(cls, own, victims, simstore.Config{
		OwnFraction:  alpha,
		VictimMemCap: 10 << 30,
	})
	check(err)

	stop := false
	if scavenge {
		var launch func()
		launch = func() {
			ex, err := workflow.NewExecutor(eng, own, fs)
			check(err)
			dag := workflow.DDBag(128, 128<<20)
			ex.OnDone = func() {
				fs.Release(dag.TotalWriteBytes())
				if !stop {
					eng.After(0.001, func() {
						if !stop {
							launch()
						}
					})
				}
			}
			check(ex.Start(dag))
		}
		launch()
		eng.RunUntil(2) // let the write storm reach steady state
	}

	r, err := tenant.NewRunner(eng, cls, victims, b, tenant.Options{
		ForeignBytes: func(id string) int64 { return fs.StoredBytes(id) },
	})
	check(err)
	check(r.Start())
	for !r.Done() {
		eng.RunUntil(eng.Now() + 5)
	}
	stop = true
	return r.Runtime()
}

func main() {
	log.SetFlags(0)
	fmt.Println("Tenant slowdown under memory scavenging (dd write storm, α=25%)")
	fmt.Println()
	fmt.Printf("%-16s %12s %14s %10s\n", "benchmark", "alone (s)", "scavenged (s)", "slowdown")
	for _, b := range tenant.HPCC() {
		alone := run(b, false)
		scavenged := run(b, true)
		fmt.Printf("%-16s %12.1f %14.1f %9.1f%%\n",
			b.Name, alone, scavenged, 100*(scavenged/alone-1))
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
