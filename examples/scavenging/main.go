// Scavenging example: the full victim lifecycle over real TCP stores —
// a victim class registers its spare memory, MemFSS extends its storage
// space onto it, the tenant takes its memory back (memory pressure), the
// monitor evacuates the victim live, and every file stays readable.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"time"

	"memfss/internal/container"
	"memfss/internal/core"
	"memfss/internal/hrw"
)

func main() {
	log.SetFlags(0)
	const password = "scavenge-secret"

	own, err := core.StartLocalStores(2, "own", password, 0)
	check(err)
	defer own.Close()
	victims, err := core.StartLocalStores(3, "victim", password, 0)
	check(err)
	defer victims.Close()

	delta, err := hrw.DeltaForOwnFraction(0.25)
	check(err)
	fs, err := core.New(core.Config{
		Classes: []core.ClassSpec{
			{Name: "own", Weight: delta, Nodes: own.Nodes},
			{
				Name: "victim", Nodes: victims.Nodes, Victim: true,
				Limits: container.Limits{MemoryBytes: 256 << 20},
			},
		},
		Password: password,
	})
	check(err)
	defer fs.Close()
	check(fs.ApplyVictimCaps())

	// The monitor plays the cluster's watchdog: when a tenant needs its
	// memory back, the victim store reports pressure and gets evacuated.
	mon := core.NewMonitor(fs, 50*time.Millisecond, func(format string, args ...any) {
		fmt.Printf("[monitor] "+format+"\n", args...)
	})
	check(mon.Start())
	defer mon.Stop()

	// Fill the system with workflow data.
	check(fs.MkdirAll("/data"))
	files := map[string][]byte{}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 8; i++ {
		path := fmt.Sprintf("/data/part-%04d", i)
		payload := make([]byte, 3<<20)
		rng.Read(payload)
		files[path] = payload
		check(fs.WriteFile(path, payload))
	}
	report(fs, "after writing 24 MiB across own + scavenged stores")

	// The tenant on victim-0 suddenly needs its memory: shrink the store
	// cap below its current usage. The store reports pressure; the
	// monitor notices and evacuates it.
	victim0 := victims.Server(0).Store()
	used := victim0.Stats().BytesUsed
	fmt.Printf("\n[tenant] victim-0 reclaims its memory (store holds %d bytes)\n", used)
	victim0.SetMaxMemory(used/2 + 1)

	deadline := time.Now().Add(10 * time.Second)
	for victim0.Stats().BytesUsed > 0 {
		if time.Now().After(deadline) {
			log.Fatal("monitor failed to evacuate the pressured victim")
		}
		time.Sleep(50 * time.Millisecond)
	}
	report(fs, "after live evacuation of victim-0")

	// Every byte must still be readable (lazy probing finds re-homed
	// stripes without any metadata rewrite).
	for path, want := range files {
		got, err := fs.ReadFile(path)
		check(err)
		if !bytes.Equal(got, want) {
			log.Fatalf("%s corrupted after evacuation", path)
		}
	}
	fmt.Println("\nall files verified intact after evacuation")
}

func report(fs *core.FileSystem, label string) {
	fmt.Printf("\n-- %s --\n", label)
	for _, id := range []string{"own-0", "own-1", "victim-0", "victim-1", "victim-2"} {
		st, ok := fs.StoreStats()[id]
		if !ok {
			fmt.Printf("  %-10s (evacuated, removed from MemFSS)\n", id)
			continue
		}
		fmt.Printf("  %-10s class=%-7s used=%9d bytes keys=%d\n", id, st.Class, st.BytesUsed, st.NumKeys)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
