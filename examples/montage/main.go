// Montage example: run a Montage-shaped scientific workflow on the
// simulated cluster twice — standalone on a large all-own reservation,
// and on a small own reservation extended by memory scavenging — and
// compare runtime and node-hours (the paper's Table II experiment, at a
// laptop-friendly scale).
package main

import (
	"fmt"
	"log"

	"memfss/internal/cluster"
	"memfss/internal/sim"
	"memfss/internal/simstore"
	"memfss/internal/workflow"
)

func runMontage(ownNodes, victimNodes int, alpha float64) float64 {
	eng := &sim.Engine{}
	cls := cluster.New(eng)
	own := cls.AddNodes("own", ownNodes, cluster.DAS5)
	var victims []*cluster.Node
	if victimNodes > 0 {
		victims = cls.AddNodes("victim", victimNodes, cluster.DAS5)
	}
	fs, err := simstore.New(cls, own, victims, simstore.Config{
		OwnFraction: alpha,
		StripeSize:  16 << 20,
	})
	check(err)
	ex, err := workflow.NewExecutor(eng, own, fs)
	check(err)
	dag := workflow.Montage(workflow.MontageConfig{Tiles: 1024, TileBytes: 16 << 20})
	check(ex.Start(dag))
	eng.Run()
	if !ex.Done() {
		log.Fatal("workflow did not finish")
	}
	return ex.Makespan()
}

func main() {
	log.SetFlags(0)
	fmt.Println("Montage on MemFSS: standalone vs memory scavenging")
	fmt.Println()

	standalone := runMontage(20, 0, 1.0)
	fmt.Printf("%-34s runtime %6.0f s   node-hours %6.2f\n",
		"standalone, 20 own nodes:", standalone, 20*standalone/3600)

	for _, n := range []int{4, 8, 16} {
		m := 40 - n
		alpha := float64(n) / float64(n+m) // balance per-node load
		rt := runMontage(n, m, alpha)
		fmt.Printf("%-34s runtime %6.0f s   node-hours %6.2f  (runtime +%3.0f%%, node-hours %+3.0f%%)\n",
			fmt.Sprintf("scavenging, %d own + %d victims:", n, m),
			rt, float64(n)*rt/3600,
			100*(rt/standalone-1),
			100*(float64(n)*rt/(20*standalone)-1))
	}
	fmt.Println()
	fmt.Println("The small reservations trade a modest runtime increase for a large")
	fmt.Println("reduction in reserved node-hours — the paper's Table II result.")
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
