// Quickstart: bring up a complete MemFSS on loopback — two own-node
// stores plus four scavenged victim stores — write and read files through
// the POSIX-style API, and inspect where the data landed.
package main

import (
	"bytes"
	"fmt"
	"log"

	"memfss/internal/container"
	"memfss/internal/core"
	"memfss/internal/hrw"
)

func main() {
	log.SetFlags(0)
	const password = "quickstart-secret"

	// 1. Launch the per-node store daemons (in-process here; in a real
	//    deployment these are `memfsd` processes on each node).
	own, err := core.StartLocalStores(2, "own", password, 0)
	check(err)
	defer own.Close()
	victims, err := core.StartLocalStores(4, "victim", password, 0)
	check(err)
	defer victims.Close()

	// 2. Choose the data split: keep 25% on own nodes, scavenge the rest
	//    (the paper's best-performing Figure 2 configuration).
	delta, err := hrw.DeltaForOwnFraction(0.25)
	check(err)

	// 3. Mount the file system.
	fs, err := core.New(core.Config{
		Classes: []core.ClassSpec{
			{Name: "own", Weight: delta, Nodes: own.Nodes},
			{
				Name: "victim", Nodes: victims.Nodes, Victim: true,
				Limits: container.Limits{MemoryBytes: 1 << 30}, // scavenge <=1 GiB per victim
			},
		},
		Password: password,
	})
	check(err)
	defer fs.Close()
	check(fs.ApplyVictimCaps())

	// 4. Use it like a file system.
	check(fs.MkdirAll("/workflow/stage1"))
	intermediate := bytes.Repeat([]byte("intermediate data "), 1<<16) // ~1.1 MiB
	for part := 0; part < 16; part++ {
		check(fs.WriteFile(fmt.Sprintf("/workflow/stage1/part-%04d", part), intermediate))
	}

	f, err := fs.Create("/workflow/stage1/log.txt")
	check(err)
	fmt.Fprintf(f, "tasks=%d bytes=%d\n", 1, len(intermediate))
	check(f.Close())

	got, err := fs.ReadFile("/workflow/stage1/part-0000")
	check(err)
	fmt.Printf("read back %d bytes, intact=%v\n", len(got), bytes.Equal(got, intermediate))

	entries, err := fs.ReadDir("/workflow/stage1")
	check(err)
	fmt.Printf("/workflow/stage1 holds %d entries, e.g.:\n", len(entries))
	for _, e := range entries[:3] {
		fmt.Printf("  %-12s %8d bytes\n", e.Name, e.Size)
	}

	// 5. See the two-layer HRW placement at work: ~25% of the stripe
	//    bytes stay on own nodes, the rest are scavenged.
	var ownBytes, victimBytes int64
	for _, st := range fs.StoreStats() {
		if st.Class == "own" {
			ownBytes += st.BytesUsed
		} else {
			victimBytes += st.BytesUsed
		}
	}
	fmt.Printf("placement: %d bytes on own stores, %d bytes scavenged (%0.f%% victim)\n",
		ownBytes, victimBytes, 100*float64(victimBytes)/float64(ownBytes+victimBytes))
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
