// Erasure example: run MemFSS with Reed–Solomon redundancy (the paper's
// in-progress fault-tolerance extension, §III-E), lose two stores, read
// everything back, and let the scrubber rebuild the missing shards —
// all over real TCP stores.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"memfss/internal/core"
)

func main() {
	log.SetFlags(0)
	const password = "erasure-secret"

	// RS(4, 2): any 4 of 6 shards reconstruct a stripe, at 50% storage
	// overhead instead of replication's 200% for the same 2-loss
	// tolerance.
	stores, err := core.StartLocalStores(8, "node", password, 0)
	check(err)
	defer stores.Close()
	fs, err := core.New(core.Config{
		Classes:    []core.ClassSpec{{Name: "own", Nodes: stores.Nodes}},
		Password:   password,
		StripeSize: 256 << 10,
		Redundancy: core.Redundancy{Mode: core.RedundancyErasure, DataShards: 4, ParityShards: 2},
	})
	check(err)
	defer fs.Close()

	payload := make([]byte, 4<<20)
	rand.New(rand.NewSource(1)).Read(payload)
	check(fs.WriteFile("/dataset", payload))
	fmt.Printf("wrote %d bytes as RS(4,2) shards across 8 stores\n", len(payload))

	// Two machines reboot: their stores come back up empty (in-memory
	// stores lose everything on restart).
	stores.Server(2).Store().FlushAll()
	stores.Server(5).Store().FlushAll()
	fmt.Println("stores node-2 and node-5 restarted empty (lost their shards)")

	got, err := fs.ReadFile("/dataset")
	check(err)
	fmt.Printf("read back %d bytes after double loss, intact=%v\n",
		len(got), bytes.Equal(got, payload))

	// The scrubber proactively reconstructs the missing shards from the
	// survivors and rewrites them, restoring full 2-loss tolerance.
	rep, err := fs.Scrub()
	check(err)
	fmt.Printf("scrub: %d stripes checked, %d shards rebuilt, %d unrepairable\n",
		rep.StripesChecked, rep.Restored, len(rep.Unrepairable))

	rep2, err := fs.Scrub()
	check(err)
	fmt.Printf("second scrub: %d shards rebuilt (redundancy fully restored)\n", rep2.Restored)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
