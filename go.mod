module memfss

go 1.22
