package memfss

// Repository-level benchmarks: one per table and figure of the paper's
// evaluation, plus ablations for the design choices called out in
// DESIGN.md §6. The per-figure benchmarks run the same harness as
// cmd/experiments at a reduced scale so `go test -bench=.` stays
// laptop-friendly; run cmd/experiments -scale 1.0 for paper-scale output.

import (
	"fmt"
	"testing"

	"memfss/internal/chash"
	"memfss/internal/cluster"
	"memfss/internal/container"
	"memfss/internal/core"
	"memfss/internal/erasure"
	"memfss/internal/eval"
	"memfss/internal/fsmeta"
	"memfss/internal/hrw"
	"memfss/internal/sim"
	"memfss/internal/simstore"
	"memfss/internal/tenant"
	"memfss/internal/workflow"
)

// benchCfg is the reduced-scale configuration used by the per-figure
// benchmarks.
var benchCfg = eval.Config{OwnNodes: 4, VictimNodes: 8, Scale: 0.05}

func BenchmarkTableIUtilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m, err := eval.TableIMeasured(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		if m.CPUPct <= 0 {
			b.Fatal("no utilization measured")
		}
	}
}

func BenchmarkFigure2Baseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := eval.Figure2(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 5 {
			b.Fatalf("%d rows", len(rows))
		}
	}
}

// slowdownBench runs one representative (suite, benchmark, workload, α)
// cell of a slowdown figure.
func slowdownBench(b *testing.B, suite []tenant.Benchmark, name string, wl eval.Workload, alpha int) {
	b.Helper()
	var bench *tenant.Benchmark
	for i := range suite {
		if suite[i].Name == name {
			bench = &suite[i]
		}
	}
	if bench == nil {
		b.Fatalf("benchmark %s not in suite", name)
	}
	for i := 0; i < b.N; i++ {
		rows, err := eval.SlowdownCell(benchCfg, *bench, wl, alpha)
		if err != nil {
			b.Fatal(err)
		}
		if rows.Baseline <= 0 || rows.Measured <= 0 {
			b.Fatal("degenerate slowdown cell")
		}
	}
}

func BenchmarkFigure3HPCC(b *testing.B) {
	slowdownBench(b, tenant.HPCC(), "EP-STREAM", eval.WorkloadDD, 25)
}

func BenchmarkFigure4HiBenchHadoop(b *testing.B) {
	slowdownBench(b, tenant.HiBenchHadoop(), "TeraSort", eval.WorkloadDD, 25)
}

func BenchmarkFigure5HiBenchSpark(b *testing.B) {
	slowdownBench(b, tenant.HiBenchSpark(), "TeraSort", eval.WorkloadDD, 50)
}

func BenchmarkFigure6Average(b *testing.B) {
	rows := []eval.SlowdownRow{
		{Suite: "HPCC", AlphaPct: 25, SlowdownPct: 5},
		{Suite: "HPCC", AlphaPct: 25, SlowdownPct: 7},
		{Suite: "HiBench-Spark", AlphaPct: 50, SlowdownPct: 18},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := eval.Figure6(rows, nil, nil); len(got) != 2 {
			b.Fatalf("%d averages", len(got))
		}
	}
}

func BenchmarkTableIIResource(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := eval.TableII(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) < 5 {
			b.Fatalf("%d rows", len(rows))
		}
	}
}

func BenchmarkFigure7Normalized(b *testing.B) {
	rows, err := eval.TableII(benchCfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := eval.Figure7(rows); len(got) == 0 {
			b.Fatal("no normalized rows")
		}
	}
}

// --- ablations (DESIGN.md §6) ----------------------------------------------

// Ablation (paper §V-C): placement decision cost of the two-layer
// weighted HRW scheme vs flat HRW over all 40 nodes vs a consistent-hash
// ring with enough virtual nodes for comparable balance. The ring needs
// O(log V) lookups but V = 40×128 points of state — and carrying weights
// on a ring multiplies the virtual-node count, which is exactly the
// overhead (one bin ≈ one store process) the paper rejects.
func BenchmarkAblationPlacementSchemes(b *testing.B) {
	own := make([]string, 8)
	for i := range own {
		own[i] = fmt.Sprintf("own-%d", i)
	}
	victims := make([]string, 32)
	for i := range victims {
		victims[i] = fmt.Sprintf("victim-%d", i)
	}
	d, _ := hrw.DeltaForOwnFraction(0.25)
	placer, err := hrw.NewPlacer(
		hrw.Class{Name: "own", Weight: d, Nodes: own},
		hrw.Class{Name: "victim", Nodes: victims},
	)
	if err != nil {
		b.Fatal(err)
	}
	all := append(append([]string{}, own...), victims...)
	ring, err := chash.New(all, 128)
	if err != nil {
		b.Fatal(err)
	}
	// A weighted ring carrying the 25/75 split: own nodes need 4/3 the
	// per-node share of victims ((25/8)/(75/32) = 4/3).
	weighted := map[string]int{}
	for _, n := range own {
		weighted[n] = 4 * 128
	}
	for _, n := range victims {
		weighted[n] = 3 * 128
	}
	wring, err := chash.NewWeighted(weighted)
	if err != nil {
		b.Fatal(err)
	}
	keys := make([]string, 512)
	for i := range keys {
		keys[i] = fmt.Sprintf("f-%d#%d", i%37, i)
	}
	b.Run("two-layer-weighted-hrw", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			placer.Place(keys[i%len(keys)])
		}
	})
	b.Run("flat-hrw-40", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			hrw.Top(all, keys[i%len(keys)])
		}
	})
	b.Run(fmt.Sprintf("chash-ring-%dpts", ring.Points()), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ring.Place(keys[i%len(keys)])
		}
	})
	b.Run(fmt.Sprintf("chash-weighted-%dpts", wring.Points()), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			wring.Place(keys[i%len(keys)])
		}
	})
}

// Ablation: minimal disruption of two-layer HRW when a victim node leaves
// (evacuation) — fraction of keys that move, vs the 1/N ideal.
func BenchmarkAblationDisruptionOnEvacuation(b *testing.B) {
	victims := make([]string, 32)
	for i := range victims {
		victims[i] = fmt.Sprintf("victim-%d", i)
	}
	keys := make([]string, 4096)
	for i := range keys {
		keys[i] = fmt.Sprintf("f-%d#%d", i%127, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		moved := 0
		shrunk := victims[1:]
		for _, k := range keys {
			if hrw.Top(victims, k) != hrw.Top(shrunk, k) {
				moved++
			}
		}
		if frac := float64(moved) / float64(len(keys)); frac > 2.0/float64(len(victims)) {
			b.Fatalf("disruption %.3f far above 1/N", frac)
		}
	}
}

// Ablation: replication vs erasure coding — storage overhead and encode
// cost for equivalent two-failure tolerance.
func BenchmarkAblationReplicationVsErasure(b *testing.B) {
	payload := make([]byte, 1<<20)
	b.Run("replicate-3x", func(b *testing.B) {
		b.SetBytes(1 << 20)
		for i := 0; i < b.N; i++ {
			// Replication "encode" is two extra copies.
			c1 := append([]byte(nil), payload...)
			c2 := append([]byte(nil), payload...)
			_, _ = c1, c2
		}
	})
	b.Run("erasure-rs-8-2", func(b *testing.B) {
		c, err := erasure.NewCoder(8, 2)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(1 << 20)
		for i := 0; i < b.N; i++ {
			shards := c.Split(payload)
			if _, err := c.Encode(shards); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Ablation: stripe-size sweep on the real (TCP) file system — write+read
// throughput per stripe size.
func BenchmarkAblationStripeSize(b *testing.B) {
	for _, stripeSize := range []int64{64 << 10, 256 << 10, 1 << 20, 4 << 20} {
		b.Run(fmt.Sprintf("stripe-%dKiB", stripeSize>>10), func(b *testing.B) {
			stores, err := core.StartLocalStores(4, "node", "", 0)
			if err != nil {
				b.Fatal(err)
			}
			defer stores.Close()
			fs, err := core.New(core.Config{
				Classes:    []core.ClassSpec{{Name: "own", Nodes: stores.Nodes}},
				StripeSize: stripeSize,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer fs.Close()
			payload := make([]byte, 4<<20)
			b.SetBytes(8 << 20) // write + read
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				path := fmt.Sprintf("/f%d", i%8)
				if err := fs.WriteFile(path, payload); err != nil {
					b.Fatal(err)
				}
				if _, err := fs.ReadFile(path); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablation: metadata placement — modulo sharding (the paper's choice) vs
// HRW for metadata keys; measures lookup decision cost only (the paper's
// argument is latency locality, the decision cost is the mechanical part).
func BenchmarkAblationMetadataSharding(b *testing.B) {
	own := make([]string, 8)
	for i := range own {
		own[i] = fmt.Sprintf("own-%d", i)
	}
	paths := make([]string, 512)
	for i := range paths {
		paths[i] = fmt.Sprintf("/wf/stage-%d/part-%d", i%17, i)
	}
	b.Run("modulo", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fsmeta.Shard(paths[i%len(paths)], len(own))
		}
	})
	b.Run("hrw", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			hrw.Top(own, paths[i%len(paths)])
		}
	})
}

// Ablation: parallel vs sequential stripe I/O on the real (TCP) file
// system — the client-side concurrency that lets MemFS-family systems
// saturate fast networks.
func BenchmarkAblationIOParallelism(b *testing.B) {
	for _, par := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("par-%d", par), func(b *testing.B) {
			stores, err := core.StartLocalStores(4, "node", "", 0)
			if err != nil {
				b.Fatal(err)
			}
			defer stores.Close()
			fs, err := core.New(core.Config{
				Classes:       []core.ClassSpec{{Name: "own", Nodes: stores.Nodes}},
				StripeSize:    256 << 10,
				IOParallelism: par,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer fs.Close()
			payload := make([]byte, 8<<20) // 32 stripes
			b.SetBytes(16 << 20)           // write + read
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := fs.WriteFile("/f", payload); err != nil {
					b.Fatal(err)
				}
				if _, err := fs.ReadFile("/f"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablation: pipelined wire protocol + parallel replica fan-out vs one
// round trip per command. Both run the same R=3 replicated multi-stripe
// write workload over real TCP stores; the only difference is
// PipelineDepth (1 = per-command baseline, 0 = default burst depth).
func benchStripeWrite(b *testing.B, depth int) {
	stores, err := core.StartLocalStores(4, "node", "", 0)
	if err != nil {
		b.Fatal(err)
	}
	defer stores.Close()
	fs, err := core.New(core.Config{
		Classes: []core.ClassSpec{{Name: "own", Nodes: stores.Nodes}},
		// Small stripes make the workload round-trip-bound — the regime
		// pipelining exists for (many stripes per operation, RTT >> per-
		// stripe transfer time).
		StripeSize:    4 << 10,
		Redundancy:    core.Redundancy{Mode: core.RedundancyReplicate, Replicas: 3},
		IOParallelism: 4,
		PipelineDepth: depth,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer fs.Close()
	payload := make([]byte, 2<<20) // 512 stripes, each stored 3x
	b.SetBytes(2 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fs.WriteFile("/f", payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStripeWritePerCommand(b *testing.B) { benchStripeWrite(b, 1) }

func BenchmarkStripeWritePipelined(b *testing.B) { benchStripeWrite(b, 0) }

func BenchmarkStripeWriteDepth64(b *testing.B)  { benchStripeWrite(b, 64) }
func BenchmarkStripeWriteDepth128(b *testing.B) { benchStripeWrite(b, 128) }

// Ablation: evacuation drain cost — per-key Get/Exists/Set round trips
// vs the batched MGET + pipelined SETNX drain. Each iteration rebuilds
// the deployment (evacuation permanently removes the node), so only the
// EvacuateNode call itself is timed.
func BenchmarkEvacuateDrain(b *testing.B) {
	for _, mode := range []struct {
		name  string
		depth int
	}{{"per-command", 1}, {"pipelined", 0}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				own, err := core.StartLocalStores(2, "own", "", 0)
				if err != nil {
					b.Fatal(err)
				}
				victims, err := core.StartLocalStores(2, "victim", "", 0)
				if err != nil {
					b.Fatal(err)
				}
				d, err := hrw.DeltaForOwnFraction(0.25)
				if err != nil {
					b.Fatal(err)
				}
				fs, err := core.New(core.Config{
					Classes: []core.ClassSpec{
						{Name: "own", Weight: d, Nodes: own.Nodes},
						{Name: "victim", Nodes: victims.Nodes, Victim: true,
							Limits: container.Limits{MemoryBytes: 1 << 30}},
					},
					StripeSize:    4 << 10,
					Redundancy:    core.Redundancy{Mode: core.RedundancyReplicate, Replicas: 2},
					PipelineDepth: mode.depth,
				})
				if err != nil {
					b.Fatal(err)
				}
				payload := make([]byte, 64<<10)
				for j := 0; j < 16; j++ {
					if err := fs.WriteFile(fmt.Sprintf("/f%d", j), payload); err != nil {
						b.Fatal(err)
					}
				}
				victim := victims.Nodes[0].ID
				b.StartTimer()
				if err := fs.EvacuateNode(victim); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				fs.Close()
				victims.Close()
				own.Close()
			}
		})
	}
}

// Ablation: workflow DAG shapes — makespan of each generator on the
// simulated cluster with scavenging. All four real-world shapes share the
// wide-stage/sequential-tail structure that caps scalability (§II-A).
func BenchmarkAblationWorkflowShapes(b *testing.B) {
	gens := []struct {
		name string
		gen  func() *workflow.DAG
	}{
		{"dd", func() *workflow.DAG { return workflow.DDBag(64, 32<<20) }},
		{"montage", func() *workflow.DAG {
			return workflow.Montage(workflow.MontageConfig{Tiles: 64, TileBytes: 4 << 20})
		}},
		{"blast", func() *workflow.DAG { return workflow.BLAST(workflow.BLASTConfig{Queries: 32}) }},
		{"epigenomics", func() *workflow.DAG {
			return workflow.Epigenomics(workflow.EpigenomicsConfig{Lanes: 2, ChunksPerLane: 16})
		}},
		{"cybershake", func() *workflow.DAG {
			return workflow.CyberShake(workflow.CyberShakeConfig{Ruptures: 128})
		}},
	}
	for _, g := range gens {
		b.Run(g.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var e sim.Engine
				c := cluster.New(&e)
				own := c.AddNodes("own", 2, cluster.DAS5)
				victims := c.AddNodes("victim", 6, cluster.DAS5)
				fs, err := simstore.New(c, own, victims, simstore.Config{OwnFraction: 0.25})
				if err != nil {
					b.Fatal(err)
				}
				ex, err := workflow.NewExecutor(&e, own, fs)
				if err != nil {
					b.Fatal(err)
				}
				if err := ex.Start(g.gen()); err != nil {
					b.Fatal(err)
				}
				e.Run()
				if !ex.Done() {
					b.Fatal("workflow did not finish")
				}
			}
		})
	}
}
