package main

// The trace verb is the CLI face of the gateway's forensics endpoints:
// it fetches /debug/traces and /debug/events from a memfsd health (or
// debug) listener and renders retained span trees and flight-recorder
// events for an operator who wants "why was that op slow" answered from
// a terminal.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"memfss/internal/obs/trace"
)

// runTrace dispatches the trace subcommands:
//
//	trace <addr>                     slow traces (same as "trace <addr> slow")
//	trace <addr> slow|errors|degraded|recent
//	trace <addr> get <id>            one trace's full span tree
//	trace <addr> events [type]       flight-recorder events, newest first
//	trace <addr> stats               retention counters
func runTrace(endpoint string, args []string) error {
	base := endpoint
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	verb := "slow"
	if len(args) > 0 {
		verb = args[0]
	}
	switch verb {
	case "slow", "errors", "degraded", "recent":
		var traces []*trace.TraceData
		if err := fetchJSON(base+"/debug/traces?kind="+verb, &traces); err != nil {
			return err
		}
		if len(traces) == 0 {
			fmt.Printf("no %s traces retained\n", verb)
			return nil
		}
		for _, d := range traces {
			printTraceLine(d)
		}
		fmt.Printf("\n%d trace(s); \"trace %s get <id>\" shows a span tree\n", len(traces), endpoint)
		return nil
	case "get":
		if len(args) != 2 {
			return fmt.Errorf("trace get needs a trace ID")
		}
		var d trace.TraceData
		if err := fetchJSON(base+"/debug/traces?id="+args[1], &d); err != nil {
			return err
		}
		printTraceLine(&d)
		printSpanTree(d.Root)
		return nil
	case "events":
		url := base + "/debug/events"
		if len(args) > 1 {
			url += "?type=" + args[1]
		}
		var events []trace.Event
		if err := fetchJSON(url, &events); err != nil {
			return err
		}
		if len(events) == 0 {
			fmt.Println("no events recorded")
			return nil
		}
		for _, e := range events {
			printEvent(e)
		}
		return nil
	case "stats":
		var st trace.StoreStats
		if err := fetchJSON(base+"/debug/traces?kind=stats", &st); err != nil {
			return err
		}
		fmt.Printf("retained=%d interesting=%d evicted=%d\n", st.Kept, st.KeptHot, st.Evicted)
		return nil
	default:
		return fmt.Errorf("unknown trace subcommand %q (want slow, errors, degraded, recent, get, events, stats)", verb)
	}
}

func fetchJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

func printTraceLine(d *trace.TraceData) {
	extra := ""
	if d.Err != "" {
		extra = " err=" + d.Err
	}
	fmt.Printf("%s %-8s %-5s %-24s off=%-10d bytes=%-9d %10s%s\n",
		d.ID, d.Status, d.Op, d.Path, d.Off, d.Bytes,
		(time.Duration(d.DurUS) * time.Microsecond).String(), extra)
}

func printSpanTree(root *trace.SpanData) {
	root.Walk(func(depth int, sp *trace.SpanData) {
		target := ""
		if sp.Node != "" {
			target = " @" + sp.Node
			if sp.Class != "" {
				target += "(" + sp.Class + ")"
			}
		}
		stripe := ""
		if sp.Stripe >= 0 {
			stripe = fmt.Sprintf(" s%d", sp.Stripe)
		}
		att := ""
		if sp.Attempts > 0 {
			att = fmt.Sprintf(" att=%d", sp.Attempts)
		}
		fmt.Printf("  %s%s%s%s%s %s +%s %s\n",
			strings.Repeat("  ", depth), sp.Name, stripe, target, att,
			sp.Outcome,
			(time.Duration(sp.StartUS) * time.Microsecond).String(),
			(time.Duration(sp.DurUS) * time.Microsecond).String())
	})
}

func printEvent(e trace.Event) {
	who := e.Node
	if e.Tenant != "" {
		if who != "" {
			who += " "
		}
		who += "tenant=" + e.Tenant
	}
	link := ""
	if e.Trace != "" {
		link = " trace=" + e.Trace
	}
	fmt.Printf("%6d %s %-7s %-14s %s%s\n",
		e.Seq, e.At.Format("15:04:05.000"), e.Type, who, e.Detail, link)
}
