package main

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"memfss/internal/obs"
)

// runStats fetches a memfsd health endpoint's /metrics page and prints a
// compact operator view: store gauges, nonzero counters, histogram
// quantiles, per-node detector states, and the repair queue's depth.
// endpoint is a host:port or URL of a daemon's -health-addr.
func runStats(endpoint string) error {
	base := endpoint
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s/metrics: %s", base, resp.Status)
	}
	page, err := obs.ParsePrometheus(resp.Body)
	if err != nil {
		return err
	}
	printStore(page)
	printHealth(page)
	printRepair(page)
	printCounters(page)
	printQuantiles(collectHists(page))
	return nil
}

func printStore(page *obs.ParsedPage) {
	get := func(name string) float64 {
		if s := page.Find(name, nil); s != nil {
			return s.Value
		}
		return 0
	}
	pressure := "no"
	if get("memfss_store_pressure") > 0 {
		pressure = "YES"
	}
	fmt.Printf("store: uptime=%s keys=%d bytes=%d cap=%d ops=%d pressure=%s\n\n",
		(time.Duration(get("memfss_store_uptime_seconds")) * time.Second),
		int64(get("memfss_store_keys")), int64(get("memfss_store_bytes_used")),
		int64(get("memfss_store_max_memory_bytes")), int64(get("memfss_store_ops")), pressure)
}

func printHealth(page *obs.ParsedPage) {
	var rows []string
	for _, s := range page.Samples {
		if s.Name != "memfss_health_node_state" {
			continue
		}
		state := "up"
		switch int(s.Value) {
		case 1:
			state = "suspect"
		case 2:
			state = "down"
		}
		rows = append(rows, fmt.Sprintf("  %-12s %s", s.Labels.Get("node"), state))
	}
	if len(rows) == 0 {
		return
	}
	sort.Strings(rows)
	fmt.Println("health:")
	for _, r := range rows {
		fmt.Println(r)
	}
	fmt.Println()
}

func printRepair(page *obs.ParsedPage) {
	depth := func(state string) int64 {
		if s := page.Find("memfss_repair_queue_depth", obs.L("state", state)); s != nil {
			return int64(s.Value)
		}
		return 0
	}
	if page.Types["memfss_repair_queue_depth"] == "" {
		return
	}
	fmt.Printf("repair queue: queued=%d parked=%d in_flight=%d\n\n",
		depth("queued"), depth("parked"), depth("in_flight"))
}

// printCounters lists every counter sample with a nonzero value, sorted,
// so new instrumentation shows up without the CLI needing to learn it.
func printCounters(page *obs.ParsedPage) {
	var rows []string
	for _, s := range page.Samples {
		if page.Types[s.Name] != "counter" || s.Value == 0 {
			continue
		}
		rows = append(rows, fmt.Sprintf("  %-58s %12s", s.Name+s.Labels.String(), formatCount(s.Value)))
	}
	if len(rows) == 0 {
		return
	}
	sort.Strings(rows)
	fmt.Println("counters (nonzero):")
	for _, r := range rows {
		fmt.Println(r)
	}
	fmt.Println()
}

func formatCount(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// parsedHist is a histogram series reconstructed from its _bucket /
// _count / _sum sample lines.
type parsedHist struct {
	family string
	labels obs.Labels
	bounds []time.Duration
	snap   obs.SeriesSnapshot
}

// collectHists regroups the page's flat histogram samples back into
// series, keyed by family plus the label set minus le. Bucket bounds are
// recovered from the le values (seconds).
func collectHists(page *obs.ParsedPage) []*parsedHist {
	type bucket struct {
		le  float64
		cum int64
	}
	buckets := make(map[string][]bucket)
	hists := make(map[string]*parsedHist)
	key := func(family string, ls obs.Labels) string { return family + ls.String() }
	ensure := func(family string, ls obs.Labels) *parsedHist {
		k := key(family, ls)
		h := hists[k]
		if h == nil {
			h = &parsedHist{family: family, labels: ls}
			hists[k] = h
		}
		return h
	}
	for _, s := range page.Samples {
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			family := strings.TrimSuffix(s.Name, "_bucket")
			if page.Types[family] != "histogram" {
				continue
			}
			le, err := strconv.ParseFloat(s.Labels.Get("le"), 64)
			if s.Labels.Get("le") == "+Inf" {
				le, err = time.Duration(1<<62).Seconds(), nil
			}
			if err != nil {
				continue
			}
			ls := labelsWithout(s.Labels, "le")
			ensure(family, ls)
			k := key(family, ls)
			buckets[k] = append(buckets[k], bucket{le: le, cum: int64(s.Value)})
		case strings.HasSuffix(s.Name, "_count"):
			family := strings.TrimSuffix(s.Name, "_count")
			if page.Types[family] != "histogram" {
				continue
			}
			ensure(family, s.Labels).snap.Count = int64(s.Value)
		case strings.HasSuffix(s.Name, "_sum"):
			family := strings.TrimSuffix(s.Name, "_sum")
			if page.Types[family] != "histogram" {
				continue
			}
			ensure(family, s.Labels).snap.Sum = time.Duration(s.Value * float64(time.Second))
		}
	}
	out := make([]*parsedHist, 0, len(hists))
	for k, h := range hists {
		bs := buckets[k]
		sort.Slice(bs, func(i, j int) bool { return bs[i].le < bs[j].le })
		for _, b := range bs {
			// The +Inf bucket contributes a cumulative count but no finite
			// bound; Quantile clamps into the last finite bucket.
			if b.le < time.Duration(1<<62).Seconds() {
				h.bounds = append(h.bounds, time.Duration(b.le*float64(time.Second)))
			}
			h.snap.CumBuckets = append(h.snap.CumBuckets, b.cum)
		}
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].family != out[j].family {
			return out[i].family < out[j].family
		}
		return out[i].labels.String() < out[j].labels.String()
	})
	return out
}

func labelsWithout(ls obs.Labels, name string) obs.Labels {
	var out obs.Labels
	for _, l := range ls {
		if l.Name != name {
			out = append(out, l)
		}
	}
	return out
}

func printQuantiles(hists []*parsedHist) {
	var rows []string
	for _, h := range hists {
		if h.snap.Count == 0 {
			continue
		}
		rows = append(rows, fmt.Sprintf("  %-52s %8d %10s %10s %10s",
			h.family+h.labels.String(), h.snap.Count,
			fmtQ(&h.snap, h.bounds, 0.50), fmtQ(&h.snap, h.bounds, 0.95), fmtQ(&h.snap, h.bounds, 0.99)))
	}
	if len(rows) == 0 {
		return
	}
	fmt.Printf("latency:\n  %-52s %8s %10s %10s %10s\n", "series", "count", "p50", "p95", "p99")
	for _, r := range rows {
		fmt.Println(r)
	}
}

func fmtQ(s *obs.SeriesSnapshot, bounds []time.Duration, q float64) string {
	d := s.Quantile(bounds, q)
	if d < 0 {
		return "-"
	}
	return d.Round(time.Microsecond).String()
}
