// Command memfsctl is the MemFSS client CLI: it mounts the file system
// (in the library sense) against a set of running memfsd stores and
// performs namespace and file operations.
//
// Node sets are given as comma-separated host:port lists; node IDs are
// assigned positionally (own-0, own-1, ..., victim-0, ...), so pass the
// lists in the same order on every invocation.
//
// Usage:
//
//	memfsctl -own 127.0.0.1:7700,127.0.0.1:7701 \
//	         -victims 127.0.0.1:7800,127.0.0.1:7801 \
//	         -alpha 0.25 -password secret <command> [args]
//
// Commands:
//
//	put <memfss-path> <local-file>   upload a file ("-" reads stdin)
//	get <memfss-path> <local-file>   download a file ("-" writes stdout)
//	ls <dir>                         list a directory
//	stat <path>                      show entry metadata
//	mkdir <dir>                      create a directory (with parents)
//	rm <path>                        remove a file or empty directory
//	rmr <path>                       remove recursively
//	mv <old> <new>                   rename
//	df                               per-store usage
//	verify <path>                    re-read every stripe of a file
//	fsck                             verify every file and find orphans
//	scrub                            restore missing redundancy everywhere
//	health                           probe every node and show detector state
//	repair [path]                    repair one file's redundancy, or show
//	                                 the background repair queue's stats
//	evacuate <node-id>               full revocation: drain a victim store
//	                                 and drop it from the deployment,
//	                                 bounded by -evac-deadline (on expiry
//	                                 the node is force-released and unmoved
//	                                 keys are handed to the repair queue)
//	drain <node-id>                  partial eviction: move data off a
//	                                 victim store until it is at or below
//	                                 -drain-target bytes (default 75% of
//	                                 its cap); the node stays registered
//	stats <health-addr>              fetch a daemon's /metrics and print a
//	                                 compact telemetry summary (this verb
//	                                 needs no -own; it talks HTTP to a
//	                                 memfsd -health-addr endpoint)
//	trace <health-addr> [slow|errors|degraded|recent]
//	                                 list retained operation traces
//	trace <health-addr> get <id>     print one trace's full span tree
//	trace <health-addr> events [type]
//	                                 print the cluster flight recorder
//	                                 (health, evac, lease, repair, quota,
//	                                 chaos)
//	tenant add <name>                register a tenant (namespace
//	                                 /tenants/<name>/) with -quota,
//	                                 -priority and -weight
//	tenant list                      show registered tenants and usage
//	tenant rm <name>                 unregister a tenant (its files stay)
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"memfss/internal/container"
	"memfss/internal/core"
	"memfss/internal/hrw"
	"memfss/internal/qos"
)

// Revocation and tenant tuning shared between main's flag set and run's
// verbs.
var (
	evacDeadline   time.Duration
	drainTarget    int64
	tenantQuota    int64
	tenantWeight   float64
	tenantPriority string
)

func main() {
	log.SetFlags(0)
	ownList := flag.String("own", "", "comma-separated own-node store addresses (required)")
	victimList := flag.String("victims", "", "comma-separated victim-node store addresses")
	alpha := flag.Float64("alpha", 0.25, "fraction of data kept on own nodes")
	password := flag.String("password", "", "store password")
	stripeSize := flag.Int64("stripe", 0, "stripe size in bytes (default 1 MiB)")
	replicas := flag.Int("replicas", 0, "replication factor (0/1 = none)")
	victimCap := flag.Int64("victim-mem", 10<<30, "per-victim scavenged memory cap in bytes")
	flag.DurationVar(&evacDeadline, "evac-deadline", 0,
		"revocation deadline for evacuate (0 = server default); on expiry the node is force-released")
	flag.Int64Var(&drainTarget, "drain-target", 0,
		"drain until the store is at or below this many bytes (0 = 75% of its memory cap)")
	flag.Int64Var(&tenantQuota, "quota", 0,
		"tenant add: memory quota in bytes (0 = unlimited)")
	flag.Float64Var(&tenantWeight, "weight", 1,
		"tenant add: bandwidth share weight")
	flag.StringVar(&tenantPriority, "priority", "normal",
		"tenant add: reclamation priority (low, normal, high)")
	flag.Parse()

	// stats talks HTTP to a daemon's health endpoint — no mount needed.
	if flag.NArg() > 0 && flag.Arg(0) == "stats" {
		if flag.NArg() != 2 {
			log.Fatal("memfsctl: stats needs a daemon health address (host:port or URL)")
		}
		if err := runStats(flag.Arg(1)); err != nil {
			log.Fatalf("memfsctl: %v", err)
		}
		return
	}

	// trace talks HTTP to the forensics endpoints — no mount needed.
	if flag.NArg() > 0 && flag.Arg(0) == "trace" {
		if flag.NArg() < 2 {
			log.Fatal("memfsctl: trace needs a daemon health/debug address (host:port or URL)")
		}
		if err := runTrace(flag.Arg(1), flag.Args()[2:]); err != nil {
			log.Fatalf("memfsctl: %v", err)
		}
		return
	}

	if *ownList == "" || flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	fs, err := connect(*ownList, *victimList, *alpha, *password, *stripeSize, *replicas, *victimCap)
	if err != nil {
		log.Fatalf("memfsctl: %v", err)
	}
	defer fs.Close()

	if err := run(fs, flag.Args()); err != nil {
		log.Fatalf("memfsctl: %v", err)
	}
}

func nodes(prefix, list string) []core.NodeSpec {
	if list == "" {
		return nil
	}
	var out []core.NodeSpec
	for i, addr := range strings.Split(list, ",") {
		out = append(out, core.NodeSpec{ID: fmt.Sprintf("%s-%d", prefix, i), Addr: strings.TrimSpace(addr)})
	}
	return out
}

func connect(ownList, victimList string, alpha float64, password string,
	stripeSize int64, replicas int, victimCap int64) (*core.FileSystem, error) {
	own := nodes("own", ownList)
	victims := nodes("victim", victimList)
	classes := []core.ClassSpec{{Name: "own", Nodes: own}}
	if len(victims) > 0 {
		d, err := hrw.DeltaForOwnFraction(alpha)
		if err != nil {
			return nil, err
		}
		if d >= 0 {
			classes[0].Weight = d
		}
		vc := core.ClassSpec{
			Name: "victim", Nodes: victims, Victim: true,
			Limits: container.Limits{MemoryBytes: victimCap},
		}
		if d < 0 {
			vc.Weight = -d
		}
		classes = append(classes, vc)
	}
	cfg := core.Config{
		Classes:    classes,
		StripeSize: stripeSize,
		Password:   password,
		// The CLI always mounts with tenant awareness (unpaced — the
		// daemon enforces bandwidth) so tenant verbs work and writes under
		// /tenants/ are quota-checked against the stored directory.
		QoS: core.QoSPolicy{Tenants: qos.NewRegistry(qos.Options{})},
	}
	if replicas > 1 {
		cfg.Redundancy = core.Redundancy{Mode: core.RedundancyReplicate, Replicas: replicas}
	}
	fs, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	if _, err := fs.LoadTenants(); err != nil {
		fs.Close()
		return nil, fmt.Errorf("loading tenant directory: %w", err)
	}
	return fs, nil
}

func run(fs *core.FileSystem, args []string) error {
	cmd, rest := args[0], args[1:]
	need := func(n int) error {
		if len(rest) != n {
			return fmt.Errorf("%s needs %d argument(s)", cmd, n)
		}
		return nil
	}
	switch cmd {
	case "put":
		if err := need(2); err != nil {
			return err
		}
		var data []byte
		var err error
		if rest[1] == "-" {
			data, err = io.ReadAll(os.Stdin)
		} else {
			data, err = os.ReadFile(rest[1])
		}
		if err != nil {
			return err
		}
		return fs.WriteFile(rest[0], data)
	case "get":
		if err := need(2); err != nil {
			return err
		}
		data, err := fs.ReadFile(rest[0])
		if err != nil {
			return err
		}
		if rest[1] == "-" {
			_, err = os.Stdout.Write(data)
			return err
		}
		return os.WriteFile(rest[1], data, 0o644)
	case "ls":
		if err := need(1); err != nil {
			return err
		}
		entries, err := fs.ReadDir(rest[0])
		if err != nil {
			return err
		}
		for _, e := range entries {
			kind := "f"
			if e.IsDir {
				kind = "d"
			}
			fmt.Printf("%s %12d  %s\n", kind, e.Size, e.Name)
		}
		return nil
	case "stat":
		if err := need(1); err != nil {
			return err
		}
		e, err := fs.Stat(rest[0])
		if err != nil {
			return err
		}
		fmt.Printf("path: %s\ndir: %v\nsize: %d\n", e.Path, e.IsDir, e.Size)
		return nil
	case "mkdir":
		if err := need(1); err != nil {
			return err
		}
		return fs.MkdirAll(rest[0])
	case "rm":
		if err := need(1); err != nil {
			return err
		}
		return fs.Remove(rest[0])
	case "rmr":
		if err := need(1); err != nil {
			return err
		}
		return fs.RemoveAll(rest[0])
	case "mv":
		if err := need(2); err != nil {
			return err
		}
		return fs.Rename(rest[0], rest[1])
	case "df":
		stats := fs.StoreStats()
		idList := make([]string, 0, len(stats))
		for id := range stats {
			idList = append(idList, id)
		}
		sort.Strings(idList)
		fmt.Printf("%-12s %-8s %14s %14s %8s %s\n", "node", "class", "used", "cap", "keys", "pressure")
		for _, id := range idList {
			s := stats[id]
			pressure := ""
			if s.Pressure {
				pressure = "PRESSURE"
			}
			fmt.Printf("%-12s %-8s %14d %14d %8d %s\n", id, s.Class, s.BytesUsed, s.MaxMemory, s.NumKeys, pressure)
		}
		return nil
	case "verify":
		if err := need(1); err != nil {
			return err
		}
		if err := fs.VerifyFile(rest[0]); err != nil {
			return err
		}
		fmt.Println("ok")
		return nil
	case "fsck":
		if err := need(0); err != nil {
			return err
		}
		rep, err := fs.Fsck()
		if err != nil {
			return err
		}
		fmt.Printf("files: %d\ndirs: %d\nbytes verified: %d\norphan stripes: %d\n",
			rep.Files, rep.Dirs, rep.Bytes, rep.OrphanStripes)
		for _, p := range rep.Damaged {
			fmt.Printf("DAMAGED: %s\n", p)
		}
		if len(rep.Damaged) > 0 {
			return fmt.Errorf("%d damaged file(s)", len(rep.Damaged))
		}
		fmt.Println("ok")
		return nil
	case "scrub":
		if err := need(0); err != nil {
			return err
		}
		rep, err := fs.Scrub()
		if err != nil {
			return err
		}
		printScrubReport(rep)
		if len(rep.Unrepairable) > 0 {
			return fmt.Errorf("%d unrepairable stripe(s)", len(rep.Unrepairable))
		}
		return nil
	case "health":
		if err := need(0); err != nil {
			return err
		}
		snap := fs.ProbeHealth()
		if snap == nil {
			return fmt.Errorf("the failure detector is disabled")
		}
		ids := make([]string, 0, len(snap))
		for id := range snap {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		now := time.Now()
		fmt.Printf("%-12s %-8s %10s %10s %6s %4s\n", "node", "state", "since", "seen", "fails", "oks")
		for _, id := range ids {
			h := snap[id]
			seen := "never"
			if age, ok := h.SeenAge(now); ok {
				seen = age.Round(time.Second).String()
			}
			fmt.Printf("%-12s %-8s %10s %10s %6d %4d\n",
				id, h.State, h.Age(now).Round(time.Second), seen, h.ConsecFails, h.ConsecOKs)
		}
		return nil
	case "repair":
		if len(rest) > 1 {
			return fmt.Errorf("repair takes at most one path")
		}
		if len(rest) == 1 {
			rep, err := fs.RepairFile(rest[0])
			if err != nil {
				return err
			}
			printScrubReport(rep)
			if len(rep.Unrepairable) > 0 {
				return fmt.Errorf("%d unrepairable stripe(s)", len(rep.Unrepairable))
			}
			return nil
		}
		st := fs.RepairStats()
		fmt.Printf("enqueued: %d\nrepaired: %d\nrestored: %d\nunrepairable: %d\n",
			st.Enqueued, st.Repaired, st.Restored, st.Unrepairable)
		fmt.Printf("queued: %d\nparked: %d\nin flight: %d\n", st.Queued, st.Parked, st.InFlight)
		fmt.Printf("overflows: %d\nfull scrubs: %d\n", st.Overflows, st.FullScrubs)
		return nil
	case "evacuate":
		if err := need(1); err != nil {
			return err
		}
		rep, err := fs.Evacuate(context.Background(), rest[0],
			core.EvacOptions{Deadline: evacDeadline})
		if rep != nil {
			fmt.Printf("node: %s\nkeys moved: %d\norphans dropped: %d\ndeferred to repair: %d\npasses: %d\n",
				rep.Node, rep.Moved, rep.Orphans, rep.Deferred, rep.Passes)
			fmt.Printf("elapsed: %s (deadline %s)\n",
				rep.Elapsed.Round(time.Millisecond), rep.Deadline)
			if rep.Forced {
				fmt.Printf("FORCED RELEASE: %d at-risk key(s) flushed before a copy was confirmed; "+
					"redundancy restored via replicas and the repair queue\n", rep.AtRisk)
			}
		}
		return err
	case "drain":
		if err := need(1); err != nil {
			return err
		}
		rep, err := fs.DrainNode(context.Background(), rest[0], drainTarget)
		if rep != nil {
			fmt.Printf("node: %s\nkeys moved: %d\nkeys skipped: %d\npasses: %d\n",
				rep.Node, rep.Moved, rep.Skipped, rep.Passes)
			fmt.Printf("bytes: %d -> %d (target %d)\nelapsed: %s\n",
				rep.BytesBefore, rep.BytesAfter, rep.Target, rep.Elapsed.Round(time.Millisecond))
		}
		return err
	case "tenant":
		if len(rest) == 0 {
			return fmt.Errorf("tenant needs a subcommand: add, list, rm")
		}
		sub, subArgs := rest[0], rest[1:]
		switch sub {
		case "add":
			if len(subArgs) != 1 {
				return fmt.Errorf("tenant add needs a tenant name")
			}
			p, err := qos.ParsePriority(tenantPriority)
			if err != nil {
				return err
			}
			spec := qos.TenantSpec{
				Name:       subArgs[0],
				QuotaBytes: tenantQuota,
				Weight:     tenantWeight,
				Priority:   p,
			}
			if err := fs.SaveTenant(spec); err != nil {
				return err
			}
			fmt.Printf("tenant %s registered: namespace %s quota %d weight %g priority %s\n",
				spec.Name, qos.TenantRoot(spec.Name), spec.QuotaBytes, spec.Weight, spec.Priority)
			return nil
		case "list", "ls":
			specs, err := fs.LoadTenants()
			if err != nil {
				return err
			}
			fmt.Printf("%-16s %14s %14s %8s %s\n", "tenant", "quota", "used", "weight", "priority")
			for _, s := range specs {
				fmt.Printf("%-16s %14d %14d %8g %s\n",
					s.Name, s.QuotaBytes, fs.TenantUsage(s.Name), s.Weight, s.Priority)
			}
			return nil
		case "rm":
			if len(subArgs) != 1 {
				return fmt.Errorf("tenant rm needs a tenant name")
			}
			return fs.DeleteTenant(subArgs[0])
		default:
			return fmt.Errorf("unknown tenant subcommand %q", sub)
		}
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

func printScrubReport(rep *core.ScrubReport) {
	fmt.Printf("files: %d\nstripes checked: %d\nrestored: %d\n",
		rep.Files, rep.StripesChecked, rep.Restored)
	for _, u := range rep.Deferred {
		fmt.Printf("DEFERRED: %s\n", u)
	}
	for _, u := range rep.Unrepairable {
		fmt.Printf("UNREPAIRABLE: %s\n", u)
	}
}
