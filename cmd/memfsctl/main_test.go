package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"memfss/internal/core"
)

// testFS connects the CLI's connect() path against in-process stores.
func testFS(t *testing.T) *core.FileSystem {
	t.Helper()
	const password = "cli-secret"
	own, err := core.StartLocalStores(2, "own", password, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(own.Close)
	victims, err := core.StartLocalStores(2, "victim", password, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(victims.Close)
	join := func(ns []core.NodeSpec) string {
		addrs := make([]string, len(ns))
		for i, n := range ns {
			addrs[i] = n.Addr
		}
		return strings.Join(addrs, ",")
	}
	fs, err := connect(join(own.Nodes), join(victims.Nodes), 0.25, password, 4<<10, 0, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fs.Close() })
	return fs
}

func TestCLICommands(t *testing.T) {
	fs := testFS(t)
	dir := t.TempDir()
	local := filepath.Join(dir, "in.txt")
	if err := os.WriteFile(local, []byte("cli payload"), 0o644); err != nil {
		t.Fatal(err)
	}

	steps := [][]string{
		{"mkdir", "/data"},
		{"put", "/data/f", local},
		{"stat", "/data/f"},
		{"ls", "/data"},
		{"verify", "/data/f"},
		{"fsck"},
		{"mv", "/data/f", "/data/g"},
		{"get", "/data/g", filepath.Join(dir, "out.txt")},
		{"df"},
		{"rm", "/data/g"},
		{"rmr", "/data"},
	}
	for _, args := range steps {
		if err := run(fs, args); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
	}
	out, err := os.ReadFile(filepath.Join(dir, "out.txt"))
	if err != nil || string(out) != "cli payload" {
		t.Fatalf("round trip through CLI: %q %v", out, err)
	}
}

func TestCLIEvacuate(t *testing.T) {
	fs := testFS(t)
	dir := t.TempDir()
	local := filepath.Join(dir, "in.bin")
	os.WriteFile(local, make([]byte, 200_000), 0o644)
	for i := 0; i < 4; i++ {
		if err := run(fs, []string{"put", fmt.Sprintf("/f%d", i), local}); err != nil {
			t.Fatal(err)
		}
	}
	if err := run(fs, []string{"evacuate", "victim-0"}); err != nil {
		t.Fatal(err)
	}
	if err := run(fs, []string{"fsck"}); err != nil {
		t.Fatalf("fsck after evacuation: %v", err)
	}
}

func TestCLIErrors(t *testing.T) {
	fs := testFS(t)
	cases := [][]string{
		{"bogus"},
		{"put", "/only-one-arg"},
		{"get", "/missing", "-"},
		{"rm", "/missing"},
		{"stat"},
		{"evacuate", "own-0"}, // refusing to evacuate own nodes
	}
	for _, args := range cases {
		if err := run(fs, args); err == nil {
			t.Errorf("%v succeeded, want error", args)
		}
	}
}

func TestNodesParsing(t *testing.T) {
	if got := nodes("own", ""); got != nil {
		t.Fatal("empty list should be nil")
	}
	got := nodes("own", "a:1, b:2")
	if len(got) != 2 || got[0].ID != "own-0" || got[1].Addr != "b:2" {
		t.Fatalf("parsed %+v", got)
	}
}
