// Command experiments regenerates every table and figure of the paper's
// evaluation (§IV) on the simulated cluster and prints the results in the
// layout of the paper's tables/plots.
//
// Usage:
//
//	experiments -run all            # everything (minutes at scale 1.0)
//	experiments -run fig2,tab2      # selected experiments
//	experiments -run fig3 -scale 0.2  # quick, scaled-down sweep
//
// Experiment IDs: tab1, fig2, fig3, fig4, fig5, fig6, tab2, fig7, ext
// (the workflow-sweep extension). fig6 implies fig3+fig4+fig5; fig7
// implies tab2.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"memfss/internal/eval"
)

// csvDir is the optional output directory for per-figure CSV time series.
var csvDir *string

func main() {
	log.SetFlags(0)
	runList := flag.String("run", "all", "comma-separated experiment IDs (tab1,fig2,fig3,fig4,fig5,fig6,tab2,fig7,ext) or 'all'")
	scale := flag.Float64("scale", 1.0, "workload scale (1.0 = paper size)")
	own := flag.Int("own", 8, "own nodes")
	victims := flag.Int("victims", 32, "victim nodes")
	csvDir = flag.String("csv", "", "directory to write per-figure CSV time series (empty = off)")
	flag.Parse()

	want := map[string]bool{}
	for _, id := range strings.Split(*runList, ",") {
		want[strings.TrimSpace(id)] = true
	}
	all := want["all"]
	pick := func(ids ...string) bool {
		if all {
			return true
		}
		for _, id := range ids {
			if want[id] {
				return true
			}
		}
		return false
	}
	cfg := eval.Config{Scale: *scale, OwnNodes: *own, VictimNodes: *victims}

	section := func(name string, fn func() error) {
		start := time.Now()
		fmt.Printf("=== %s ===\n", name)
		if err := fn(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("(%s in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	if pick("tab1") {
		section("Table I", func() error {
			m, err := eval.TableIMeasured(cfg)
			if err != nil {
				return err
			}
			fmt.Print(eval.FormatTableI(eval.TableIReference(), m))
			return nil
		})
	}

	if pick("fig2") {
		section("Figure 2", func() error {
			rows, err := eval.Figure2(cfg)
			if err != nil {
				return err
			}
			fmt.Print(eval.FormatFigure2(rows))
			// Time-resolved view (Figures 2a–2e plot utilization over the
			// run): sparkline per α, CSV per α when -csv is set.
			for _, alpha := range []int{0, 25, 50, 75, 100} {
				samples, err := eval.Figure2Series(cfg, alpha, 1)
				if err != nil {
					return err
				}
				// Sparkline full scale: 600 MB/s, just above the paper's
				// "never higher than 500 MB/s" victim bound, so the bars
				// are legible (the NIC itself is 3000 MB/s).
				fmt.Print(eval.FormatFigure2Series(alpha, samples, 600))
				if *csvDir != "" {
					if err := os.MkdirAll(*csvDir, 0o755); err != nil {
						return err
					}
					name := filepath.Join(*csvDir, fmt.Sprintf("fig2_alpha%d.csv", alpha))
					f, err := os.Create(name)
					if err != nil {
						return err
					}
					if err := eval.WriteFigure2CSV(f, samples); err != nil {
						f.Close()
						return err
					}
					if err := f.Close(); err != nil {
						return err
					}
					fmt.Printf("  wrote %s\n", name)
				}
			}
			return nil
		})
	}

	var rows3, rows4, rows5 []eval.SlowdownRow
	if pick("fig3", "fig6") {
		section("Figure 3", func() error {
			var err error
			rows3, err = eval.Figure3(cfg)
			if err != nil {
				return err
			}
			fmt.Print(eval.FormatSlowdowns("Figure 3 — HPCC slowdown under memory scavenging", rows3))
			return nil
		})
	}
	if pick("fig4", "fig6") {
		section("Figure 4", func() error {
			var err error
			rows4, err = eval.Figure4(cfg)
			if err != nil {
				return err
			}
			fmt.Print(eval.FormatSlowdowns("Figure 4 — HiBench (Hadoop) slowdown under memory scavenging", rows4))
			return nil
		})
	}
	if pick("fig5", "fig6") {
		section("Figure 5", func() error {
			var err error
			rows5, err = eval.Figure5(cfg)
			if err != nil {
				return err
			}
			fmt.Print(eval.FormatSlowdowns("Figure 5 — HiBench (Spark) slowdown, α=50%", rows5))
			return nil
		})
	}
	if pick("fig6") {
		section("Figure 6", func() error {
			fmt.Print(eval.FormatFigure6(eval.Figure6(rows3, rows4, rows5)))
			return nil
		})
	}

	var tab2 []eval.TableIIRow
	if pick("tab2", "fig7") {
		section("Table II", func() error {
			var err error
			tab2, err = eval.TableII(cfg)
			if err != nil {
				return err
			}
			fmt.Print(eval.FormatTableII(tab2))
			return nil
		})
	}
	if pick("fig7") {
		section("Figure 7", func() error {
			fmt.Print(eval.FormatFigure7(eval.Figure7(tab2)))
			return nil
		})
	}

	if pick("ext") {
		section("Extension: workflow sweep", func() error {
			rows, err := eval.WorkflowSweep(cfg)
			if err != nil {
				return err
			}
			fmt.Print(eval.FormatWorkflowSweep(rows))
			return nil
		})
		section("Extension: revocation storm", func() error {
			rows, err := eval.RevocationSweep(cfg)
			if err != nil {
				return err
			}
			fmt.Print(eval.FormatRevocationSweep(rows))
			return nil
		})
	}

	if !all && len(want) == 0 {
		fmt.Fprintln(os.Stderr, "nothing selected; see -run")
		os.Exit(2)
	}
}
