// Command memfss-bench runs a real-mode (actual TCP stores) dd-style
// micro-benchmark against an in-process MemFSS deployment: it launches
// own and victim stores on loopback, mounts the file system, and drives a
// bag of write tasks followed by a full read-back, reporting throughput —
// a laptop-scale analogue of the paper's Figure 2 workload.
//
// By default the workload runs twice — once in per-command mode (every
// store command is its own round trip, PipelineDepth=1) and once in
// pipelined mode — and reports the aggregate MB/s of both side by side,
// plus histogram-derived p50/p95/p99 latency per op (end-to-end
// WriteAt/ReadAt) and per node class (per-stripe store ops against own vs
// victim nodes), read from the deployment's telemetry registry. -json
// emits the same results as a machine-readable object.
//
// With -chaos the victim stores are reached through faultwrap proxies
// that drop, truncate, and delay connections from a seeded plan, one
// victim is killed permanently between the write and read phases, and the
// run reports injected-fault counts, retry volume, degraded writes, the
// failure detector's time to detection, the repair queue's time to
// restored redundancy, and a final fsck verdict instead of raw
// throughput — a reliability soak rather than a speed run.
//
// Usage:
//
//	memfss-bench -own 2 -victims 6 -alpha 0.25 -tasks 64 -size 8388608
//	memfss-bench -pipeline=false            # per-command mode only
//	memfss-bench -depth 64                  # deeper pipeline bursts
//	memfss-bench -chaos -tasks 16 -size 1048576
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	chaospkg "memfss/internal/chaos"
	"memfss/internal/container"
	"memfss/internal/core"
	"memfss/internal/faultwrap"
	"memfss/internal/health"
	"memfss/internal/hrw"
	"memfss/internal/obs"
	"memfss/internal/qos"
)

func main() {
	log.SetFlags(0)
	ownN := flag.Int("own", 2, "number of own-node stores to launch")
	victimN := flag.Int("victims", 6, "number of victim-node stores to launch")
	alpha := flag.Float64("alpha", 0.25, "fraction of data kept on own nodes")
	tasks := flag.Int("tasks", 64, "number of dd tasks")
	size := flag.Int64("size", 8<<20, "bytes written per task")
	workers := flag.Int("workers", 8, "concurrent writer tasks")
	pipeline := flag.Bool("pipeline", true, "also run the pipelined wire mode and report both modes side by side")
	depth := flag.Int("depth", 0, "pipeline burst depth for the pipelined mode (0 = default)")
	stripeSize := flag.Int64("stripe", 0, "stripe size in bytes (0 = default); small stripes make the workload round-trip-bound")
	chaos := flag.Bool("chaos", false, "run the fault-injection soak: victims behind chaos proxies, one killed mid-run, report fault/retry/degraded counters and fsck")
	chaosSeed := flag.Int64("chaos-seed", 42, "seed for the chaos proxies' fault plan")
	redFlag := flag.String("redundancy", "", "redundancy mode: replicate or erasure (default: none for throughput runs, replicate for -chaos)")
	ecK := flag.Int("ec-k", 4, "erasure data shards per stripe (with -redundancy erasure)")
	ecM := flag.Int("ec-m", 2, "erasure parity shards per stripe (with -redundancy erasure)")
	jsonOut := flag.Bool("json", false, "emit results as JSON instead of the human report (non-chaos modes)")
	benchOut := flag.String("bench-out", "", "append a schema-stable benchmark record (throughput, p50/p95/p99, allocs/op, config) to this JSON file, e.g. BENCH_baseline.json")
	saturate := flag.Int("saturate", 0, "also run a saturation leg with this many concurrent clients (both write and read phases parallel); 0 disables")
	poolSize := flag.Int("pool", 0, "connections per store node (0 = default)")
	tenantsLeg := flag.Bool("tenants", false, "run the multi-tenant QoS leg: a high-priority tenant's throughput solo vs under low-priority saturation, then a mid-workload lease revocation; reports the isolation delta and notice SLO")
	qosBW := flag.Int64("qos-bw", 8<<20, "tenants leg: aggregate tenant bandwidth budget in bytes/sec, split 3:1 high:low")
	scenario := flag.String("scenario", "", "run named chaos scenarios from the declarative library and exit nonzero on any SLO violation: 'all' or a comma-separated subset of "+strings.Join(chaospkg.Names(), ", "))
	scenarioOut := flag.String("scenario-out", "BENCH_scenarios.json", "append each -scenario result as a trajectory point to this JSON file ('' disables)")
	flag.Parse()

	// The -scenario leg builds its own clusters per scenario (topology,
	// redundancy, and fault plans are part of each scenario's declaration),
	// so it dispatches before any store setup and ignores the flags above.
	if *scenario != "" {
		runScenarios(*scenario, *scenarioOut)
		return
	}

	// Resolve the redundancy scheme the workload runs under. The default
	// preserves the historical shapes — no redundancy for throughput runs,
	// 2-way replication for the chaos soak — so BENCH_*.json trajectories
	// stay comparable across PRs.
	var red core.Redundancy
	switch *redFlag {
	case "":
		if *chaos {
			red = core.Redundancy{Mode: core.RedundancyReplicate, Replicas: 2}
		}
	case "replicate":
		red = core.Redundancy{Mode: core.RedundancyReplicate, Replicas: 2}
	case "erasure":
		red = core.Redundancy{Mode: core.RedundancyErasure, DataShards: *ecK, ParityShards: *ecM}
		if need := *ecK + *ecM; *ownN < need || (*victimN > 0 && *victimN < need) {
			log.Fatalf("memfss-bench: -redundancy erasure RS(%d,%d) needs every class to hold at least %d nodes (got -own %d, -victims %d); try -own %d -victims %d",
				*ecK, *ecM, need, *ownN, *victimN, need, need+2)
		}
	default:
		log.Fatalf("memfss-bench: unknown -redundancy %q (want replicate or erasure)", *redFlag)
	}
	if *chaos && red.Mode == core.RedundancyReplicate && (*ownN < 2 || *victimN < 2) {
		log.Fatal("memfss-bench: -chaos needs -own >= 2 and -victims >= 2 (replication requires 2 nodes per class)")
	}

	const password = "bench-secret"
	own, err := core.StartLocalStores(*ownN, "own", password, 0)
	if err != nil {
		log.Fatal(err)
	}
	defer own.Close()
	classes := []core.ClassSpec{{Name: "own", Nodes: own.Nodes}}
	var victims *core.LocalStores
	if *victimN > 0 {
		victims, err = core.StartLocalStores(*victimN, "victim", password, 0)
		if err != nil {
			log.Fatal(err)
		}
		defer victims.Close()
		d, err := hrw.DeltaForOwnFraction(*alpha)
		if err != nil {
			log.Fatal(err)
		}
		if d >= 0 {
			classes[0].Weight = d
		}
		vc := core.ClassSpec{
			Name: "victim", Nodes: victims.Nodes, Victim: true,
			Limits: container.Limits{MemoryBytes: 1 << 34},
		}
		if d < 0 {
			vc.Weight = -d
		}
		classes = append(classes, vc)
	}

	var proxies []*faultwrap.Proxy
	if *chaos {
		// Re-point the victim class at chaos proxies; own stores (the
		// metadata path) stay clean, matching the paper's trust model.
		plan := faultwrap.Plan{
			Seed:            *chaosSeed,
			DropBeforeReply: 0.03,
			DropMidReply:    0.02,
			CutRequest:      0.02,
			DelayProb:       0.05,
			Delay:           time.Millisecond,
		}
		targets := make([]string, len(victims.Nodes))
		for i, n := range victims.Nodes {
			targets[i] = n.Addr
		}
		var err error
		proxies, err = faultwrap.WrapAll(targets, plan)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			for _, p := range proxies {
				p.Close()
			}
		}()
		proxied := make([]core.NodeSpec, len(victims.Nodes))
		for i, n := range victims.Nodes {
			proxied[i] = core.NodeSpec{ID: n.ID, Addr: proxies[i].Addr()}
		}
		classes[len(classes)-1].Nodes = proxied
	}

	payload := make([]byte, *size)
	rand.New(rand.NewSource(42)).Read(payload)
	total := float64(*tasks) * float64(*size)

	if !*jsonOut {
		fmt.Printf("memfss-bench: %d tasks x %d B over %d own + %d victim stores (alpha=%.2f)\n",
			*tasks, *size, *ownN, *victimN, *alpha)
	}

	if *chaos {
		runChaos(classes, password, red, *stripeSize, *depth, *tasks, *workers, payload, proxies, victims)
		return
	}
	if *tenantsLeg {
		runTenants(classes, password, red, *stripeSize, *depth, *tasks, payload, *qosBW, *benchOut, *jsonOut,
			benchConfig{
				Tasks: *tasks, Size: *size, Own: *ownN, Victims: *victimN,
				Alpha: *alpha, Workers: *workers, Depth: *depth,
				Stripe: *stripeSize, Pool: *poolSize, Redundancy: *redFlag,
				QoSBW: *qosBW,
			})
		return
	}

	type result struct {
		label        string
		wMBs, rMBs   float64
		wDur, rDur   time.Duration
		placementFmt string
		latency      []latencyRow
		allocsPerOp  float64
		storeOps     int64
		workers      int
	}
	// runMode runs the full write-then-read workload once. modeWorkers
	// bounds concurrent writer tasks; parallelRead additionally runs the
	// read-back phase at the same concurrency (the saturation shape) rather
	// than the default serial scan. Allocations are sampled around the run
	// and reported per store operation — the end-to-end allocs/op of the
	// whole in-process stack (client, wire, server, store).
	runMode := func(label string, pipeDepth, modeWorkers int, parallelRead bool, dir string) result {
		fs, err := core.New(core.Config{
			Classes: classes, Password: password,
			StripeSize: *stripeSize, PipelineDepth: pipeDepth,
			PoolSize: *poolSize, Redundancy: red,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer fs.Close()
		if err := fs.MkdirAll(dir); err != nil {
			log.Fatal(err)
		}
		var msBefore runtime.MemStats
		runtime.ReadMemStats(&msBefore)
		start := time.Now()
		var wg sync.WaitGroup
		errCh := make(chan error, *tasks)
		sem := make(chan struct{}, modeWorkers)
		for i := 0; i < *tasks; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				errCh <- fs.WriteFile(fmt.Sprintf("%s/task-%d", dir, i), payload)
			}(i)
		}
		wg.Wait()
		close(errCh)
		for err := range errCh {
			if err != nil {
				log.Fatal(err)
			}
		}
		writeDur := time.Since(start)

		start = time.Now()
		readOne := func(i int) error {
			data, err := fs.ReadFile(fmt.Sprintf("%s/task-%d", dir, i))
			if err != nil {
				return err
			}
			if int64(len(data)) != *size {
				return fmt.Errorf("task %d: read %d bytes, want %d", i, len(data), *size)
			}
			return nil
		}
		if parallelRead {
			rErrCh := make(chan error, *tasks)
			rSem := make(chan struct{}, modeWorkers)
			for i := 0; i < *tasks; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					rSem <- struct{}{}
					defer func() { <-rSem }()
					rErrCh <- readOne(i)
				}(i)
			}
			wg.Wait()
			close(rErrCh)
			for err := range rErrCh {
				if err != nil {
					log.Fatal(err)
				}
			}
		} else {
			for i := 0; i < *tasks; i++ {
				if err := readOne(i); err != nil {
					log.Fatal(err)
				}
			}
		}
		readDur := time.Since(start)
		var msAfter runtime.MemStats
		runtime.ReadMemStats(&msAfter)
		counters := fs.Counters()

		var ownBytes, victimBytes int64
		for _, st := range fs.StoreStats() {
			if st.Class == "own" {
				ownBytes += st.BytesUsed
			} else {
				victimBytes += st.BytesUsed
			}
		}
		res := result{
			label: label,
			wMBs:  total / 1e6 / writeDur.Seconds(),
			rMBs:  total / 1e6 / readDur.Seconds(),
			wDur:  writeDur, rDur: readDur,
			latency:  latencyRows(fs.Metrics()),
			storeOps: counters.StoreOps,
			workers:  modeWorkers,
		}
		if counters.StoreOps > 0 {
			res.allocsPerOp = float64(msAfter.Mallocs-msBefore.Mallocs) / float64(counters.StoreOps)
		}
		if ownBytes+victimBytes > 0 {
			res.placementFmt = fmt.Sprintf("%.1f%% own / %.1f%% victim (target alpha %.0f%%)",
				100*float64(ownBytes)/float64(ownBytes+victimBytes),
				100*float64(victimBytes)/float64(ownBytes+victimBytes), 100**alpha)
		}
		// Drop this mode's files so the next mode measures the same
		// cold-write workload against the shared stores.
		if err := fs.RemoveAll(dir); err != nil {
			log.Fatal(err)
		}
		return res
	}

	results := []result{runMode("per-command", 1, *workers, false, "/bench-percmd")}
	if *pipeline {
		results = append(results, runMode("pipelined", *depth, *workers, false, "/bench-pipelined"))
	}
	if *saturate > 0 {
		results = append(results, runMode(fmt.Sprintf("saturated-%d", *saturate),
			*depth, *saturate, true, "/bench-saturated"))
	}

	modesJSON := func() []jsonMode {
		var modes []jsonMode
		for _, r := range results {
			modes = append(modes, jsonMode{
				Label: r.label, WriteMBs: r.wMBs, ReadMBs: r.rMBs,
				WriteSeconds: r.wDur.Seconds(), ReadSeconds: r.rDur.Seconds(),
				Placement: r.placementFmt, Latency: r.latency,
				AllocsPerOp: r.allocsPerOp, StoreOps: r.storeOps, Workers: r.workers,
			})
		}
		return modes
	}

	if *benchOut != "" {
		cfg := benchConfig{
			Tasks: *tasks, Size: *size, Own: *ownN, Victims: *victimN,
			Alpha: *alpha, Workers: *workers, Depth: *depth,
			Stripe: *stripeSize, Saturate: *saturate, Pool: *poolSize,
			Redundancy: *redFlag,
		}
		if red.Mode == core.RedundancyErasure {
			cfg.ECK, cfg.ECM = red.DataShards, red.ParityShards
		}
		rec := benchRecord{
			Time:   time.Now().UTC().Format(time.RFC3339),
			Config: cfg,
			Modes:  modesJSON(),
		}
		if err := appendBenchRecord(*benchOut, rec); err != nil {
			log.Fatal(err)
		}
		if !*jsonOut {
			fmt.Printf("bench record appended to %s\n", *benchOut)
		}
	}

	if *jsonOut {
		out := struct {
			Tasks   int        `json:"tasks"`
			Size    int64      `json:"size_bytes"`
			Own     int        `json:"own_nodes"`
			Victims int        `json:"victim_nodes"`
			Alpha   float64    `json:"alpha"`
			Modes   []jsonMode `json:"modes"`
		}{Tasks: *tasks, Size: *size, Own: *ownN, Victims: *victimN, Alpha: *alpha, Modes: modesJSON()}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			log.Fatal(err)
		}
		return
	}

	for _, r := range results {
		fmt.Printf("%-12s write: %6.1f MB in %8v (%6.0f MB/s)   read: %6.1f MB in %8v (%6.0f MB/s)   %6.1f allocs/store-op\n",
			r.label, total/1e6, r.wDur.Round(time.Millisecond), r.wMBs,
			total/1e6, r.rDur.Round(time.Millisecond), r.rMBs, r.allocsPerOp)
	}
	if len(results) >= 2 {
		fmt.Printf("pipelined vs per-command: %.2fx write, %.2fx read\n",
			results[1].wMBs/results[0].wMBs, results[1].rMBs/results[0].rMBs)
	}
	if p := results[len(results)-1].placementFmt; p != "" {
		fmt.Printf("placement: %s\n", p)
	}
	for _, r := range results {
		if len(r.latency) == 0 {
			continue
		}
		fmt.Printf("latency (%s):\n  %-46s %8s %10s %10s %10s\n", r.label, "series", "count", "p50", "p95", "p99")
		for _, row := range r.latency {
			fmt.Printf("  %-46s %8d %10s %10s %10s\n", row.Series, row.Count,
				fmtMs(row.P50ms), fmtMs(row.P95ms), fmtMs(row.P99ms))
		}
	}
}

// jsonMode is one workload mode's machine-readable result; the schema is
// stable across PRs so BENCH_*.json files form a comparable trajectory.
type jsonMode struct {
	Label        string       `json:"label"`
	WriteMBs     float64      `json:"write_mb_s"`
	ReadMBs      float64      `json:"read_mb_s"`
	WriteSeconds float64      `json:"write_seconds"`
	ReadSeconds  float64      `json:"read_seconds"`
	Placement    string       `json:"placement,omitempty"`
	Latency      []latencyRow `json:"latency"`
	AllocsPerOp  float64      `json:"allocs_per_store_op"`
	StoreOps     int64        `json:"store_ops"`
	Workers      int          `json:"workers"`
}

// benchConfig pins the knobs a record was produced under, so two records
// are only compared when their workloads match.
type benchConfig struct {
	Tasks    int     `json:"tasks"`
	Size     int64   `json:"size_bytes"`
	Own      int     `json:"own_nodes"`
	Victims  int     `json:"victim_nodes"`
	Alpha    float64 `json:"alpha"`
	Workers  int     `json:"workers"`
	Depth    int     `json:"depth"`
	Stripe   int64   `json:"stripe_bytes"`
	Saturate int     `json:"saturate"`
	Pool     int     `json:"pool_size"`
	// Redundancy is the -redundancy flag value ("" = the historical
	// default: none for throughput runs, replicate for -chaos); ECK/ECM
	// pin the Reed-Solomon geometry when it is "erasure".
	Redundancy string `json:"redundancy,omitempty"`
	ECK        int    `json:"ec_k,omitempty"`
	ECM        int    `json:"ec_m,omitempty"`
	// QoSBW is the -tenants leg's aggregate bandwidth budget (0 on
	// throughput records).
	QoSBW int64 `json:"qos_bw,omitempty"`
}

// benchRecord is one -bench-out entry: the perf-trajectory point the
// ROADMAP expects, appended to a JSON array file.
type benchRecord struct {
	Time   string      `json:"time"`
	Config benchConfig `json:"config"`
	Modes  []jsonMode  `json:"modes"`
}

// appendBenchRecord appends rec to the JSON array in path, creating the
// file if needed. The file stays a valid JSON document after every append.
func appendBenchRecord(path string, rec benchRecord) error {
	var records []benchRecord
	if data, err := os.ReadFile(path); err == nil && len(bytes.TrimSpace(data)) > 0 {
		if err := json.Unmarshal(data, &records); err != nil {
			return fmt.Errorf("memfss-bench: %s exists but is not a bench-record array: %w", path, err)
		}
	} else if err != nil && !os.IsNotExist(err) {
		return err
	}
	records = append(records, rec)
	out, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// latencyRow is one histogram series' quantile summary, derived from the
// deployment's telemetry registry: end-to-end per op, and per-stripe per
// op and node class.
type latencyRow struct {
	Series string  `json:"series"`
	Count  int64   `json:"count"`
	P50ms  float64 `json:"p50_ms"`
	P95ms  float64 `json:"p95_ms"`
	P99ms  float64 `json:"p99_ms"`
	// WorstTrace is the exemplar trace ID from the series' highest
	// occupied latency bucket — the join key from this row's p99 to the
	// retained trace explaining it (fetch with memfsctl trace get).
	WorstTrace string `json:"worst_trace,omitempty"`
}

func latencyRows(fams []obs.FamilySnapshot) []latencyRow {
	var rows []latencyRow
	add := func(famName string, labels obs.Labels) {
		for i := range fams {
			if fams[i].Name != famName {
				continue
			}
			s := fams[i].Find(labels)
			if s == nil || s.Count == 0 {
				return
			}
			row := latencyRow{
				Series: famName + labels.String(),
				Count:  s.Count,
				P50ms:  quantileMs(s, fams[i].Bounds, 0.50),
				P95ms:  quantileMs(s, fams[i].Bounds, 0.95),
				P99ms:  quantileMs(s, fams[i].Bounds, 0.99),
			}
			if ex, ok := s.WorstExemplar(); ok {
				row.WorstTrace = fmt.Sprintf("%016x", ex.TraceID)
			}
			rows = append(rows, row)
			return
		}
	}
	for _, op := range []string{"write", "read"} {
		add("memfss_fs_op_seconds", obs.L("op", op))
		for _, cls := range []string{"own", "victim"} {
			add("memfss_fs_stripe_seconds", obs.L("op", op, "class", cls))
		}
	}
	return rows
}

func quantileMs(s *obs.SeriesSnapshot, bounds []time.Duration, q float64) float64 {
	d := s.Quantile(bounds, q)
	if d < 0 {
		return -1
	}
	return float64(d) / float64(time.Millisecond)
}

func fmtMs(ms float64) string {
	if ms < 0 {
		return "-"
	}
	return time.Duration(ms * float64(time.Millisecond)).Round(time.Microsecond).String()
}

// runTenants is the -tenants workload: two tenants (prod, weight 3,
// high priority; batch, weight 1, low priority) share the deployment
// under an aggregate bandwidth budget. The leg measures prod's write
// throughput alone, then again while batch saturates its own share —
// under strict weighted-fair shares the two numbers should match — and
// finishes with a lease revocation through the broker mid-traffic,
// reporting the eviction-notice SLO and verifying zero prod data loss.
// The solo/contended pair lands in -bench-out as two modes of one
// record, so BENCH_qos.json tracks the isolation delta across PRs.
func runTenants(classes []core.ClassSpec, password string, red core.Redundancy, stripeSize int64,
	depth, tasks int, payload []byte, qosBW int64, benchOut string, jsonOut bool, cfg benchConfig) {
	reg := obs.NewRegistry()
	tenants := qos.NewRegistry(qos.Options{TotalBandwidth: qosBW, Obs: reg})
	defer tenants.Close()
	fs, err := core.New(core.Config{
		Classes: classes, Password: password,
		StripeSize: stripeSize, PipelineDepth: depth,
		Redundancy: red,
		Obs:        core.ObsPolicy{Registry: reg},
		QoS:        core.QoSPolicy{Tenants: tenants},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer fs.Close()
	if err := fs.SaveTenant(qos.TenantSpec{Name: "prod", Weight: 3, Priority: qos.PriorityHigh}); err != nil {
		log.Fatal(err)
	}
	if err := fs.SaveTenant(qos.TenantSpec{Name: "batch", Weight: 1, Priority: qos.PriorityLow}); err != nil {
		log.Fatal(err)
	}
	if err := fs.ApplyVictimCaps(); err != nil {
		log.Fatal(err)
	}
	total := float64(tasks) * float64(len(payload))

	writeAll := func(dir string) time.Duration {
		if err := fs.MkdirAll(dir); err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		for i := 0; i < tasks; i++ {
			if err := fs.WriteFile(fmt.Sprintf("%s/task-%d", dir, i), payload); err != nil {
				log.Fatal(err)
			}
		}
		return time.Since(start)
	}
	// refill lets prod's token bucket (burst = 1s of its share) fill back
	// up so the solo and contended runs start from the same state.
	refill := func() { time.Sleep(1200 * time.Millisecond) }

	soloDur := writeAll("/tenants/prod/solo")
	refill()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		junk := payload
		if len(junk) > 256<<10 {
			junk = junk[:256<<10]
		}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = fs.WriteFile(fmt.Sprintf("/tenants/batch/junk-%d", i%8), junk)
		}
	}()
	contendedDur := writeAll("/tenants/prod/contended")
	close(stop)
	wg.Wait()

	soloMBs := total / 1e6 / soloDur.Seconds()
	contendedMBs := total / 1e6 / contendedDur.Seconds()
	delta := 100 * (soloDur.Seconds() - contendedDur.Seconds()) / soloDur.Seconds()
	if delta < 0 {
		delta = -delta
	}

	// Revocation leg: lease a victim to batch, then take it back through
	// the broker (notice window + graduated evacuation) and check prod lost
	// nothing. Skipped when the deployment has no victims to lease.
	var rev qos.RevokeReport
	revoked := false
	if len(classes) > 1 {
		broker := qos.NewBroker(qos.BrokerOptions{Evac: fs, Obs: reg, Journal: fs.Events()})
		const noticeSLO = 100 * time.Millisecond
		if err := fs.AdvertiseCapacity(broker, noticeSLO); err != nil {
			log.Fatal(err)
		}
		lease, err := broker.Request("batch", 1<<20)
		if err != nil {
			log.Fatal(err)
		}
		rev, err = broker.Revoke(context.Background(), lease.Node, qos.RevokeOptions{EvacDeadline: 30 * time.Second})
		if err != nil {
			log.Fatalf("tenants: revocation of %s failed: %v", lease.Node, err)
		}
		revoked = true
		for i := 0; i < tasks; i++ {
			for _, dir := range []string{"/tenants/prod/solo", "/tenants/prod/contended"} {
				if err := fs.VerifyFile(fmt.Sprintf("%s/task-%d", dir, i)); err != nil {
					log.Fatalf("tenants: prod data lost to revocation: %v", err)
				}
			}
		}
	}

	modes := []jsonMode{
		{Label: "qos-solo", WriteMBs: soloMBs, WriteSeconds: soloDur.Seconds(), Latency: latencyRows(fs.Metrics()), Workers: 1},
		{Label: "qos-contended", WriteMBs: contendedMBs, WriteSeconds: contendedDur.Seconds(), Workers: 1},
	}
	if benchOut != "" {
		rec := benchRecord{Time: time.Now().UTC().Format(time.RFC3339), Config: cfg, Modes: modes}
		if err := appendBenchRecord(benchOut, rec); err != nil {
			log.Fatal(err)
		}
	}
	if jsonOut {
		out := struct {
			Modes []jsonMode `json:"modes"`
			Delta float64    `json:"isolation_delta_pct"`
		}{Modes: modes, Delta: delta}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Printf("tenants: prod solo  %6.1f MB in %8v (%6.1f MB/s)\n",
		total/1e6, soloDur.Round(time.Millisecond), soloMBs)
	fmt.Printf("tenants: contended  %6.1f MB in %8v (%6.1f MB/s)  delta %.1f%% (isolation target <= 25%%)\n",
		total/1e6, contendedDur.Round(time.Millisecond), contendedMBs, delta)
	if delta > 25 {
		log.Fatalf("tenants: isolation violated: %.1f%% > 25%%", delta)
	}
	if revoked {
		fmt.Printf("tenants: revoked %s: notice %v (SLO %v, met=%v), evacuated=%v in %v; prod verified, zero loss\n",
			rev.Node, rev.Notice.Round(time.Millisecond), rev.SLO, rev.SLOMet, rev.Evacuated,
			rev.Elapsed.Round(time.Millisecond))
		if !rev.SLOMet {
			log.Fatal("tenants: eviction-notice SLO violated")
		}
	}
	if benchOut != "" {
		fmt.Printf("bench record appended to %s\n", benchOut)
	}
}

// runChaos is the -chaos workload: write every task under injected
// faults, kill one victim permanently, read everything back, and report
// reliability counters and a fsck verdict instead of throughput. The
// redundancy scheme is the caller's: 2-way replication by default, or
// RS(k,m) erasure coding with -redundancy erasure — the same soak then
// exercises degraded shard writes and reconstruction reads instead of
// replica failover.
func runChaos(classes []core.ClassSpec, password string, red core.Redundancy, stripeSize int64, depth, tasks, workers int,
	payload []byte, proxies []*faultwrap.Proxy, victims *core.LocalStores) {
	fs, err := core.New(core.Config{
		Classes: classes, Password: password,
		StripeSize: stripeSize, PipelineDepth: depth,
		Redundancy: red,
		Retry: core.RetryPolicy{
			MaxAttempts: 8,
			BaseDelay:   time.Millisecond,
			MaxDelay:    8 * time.Millisecond,
			OpTimeout:   10 * time.Second,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer fs.Close()
	if err := fs.MkdirAll("/chaos"); err != nil {
		log.Fatal(err)
	}
	// One victim dies for good halfway through the write phase, so the
	// later writes exercise the degraded-quorum path, not just the reads.
	var kill sync.Once
	var killedAt time.Time
	start := time.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, tasks)
	sem := make(chan struct{}, workers)
	for i := 0; i < tasks; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if i >= tasks/2 {
				kill.Do(func() { proxies[1].Kill(); killedAt = time.Now() })
			}
			errCh <- fs.WriteFile(fmt.Sprintf("/chaos/task-%d", i), payload)
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			log.Fatalf("chaos write failed: %v", err)
		}
	}
	writeDur := time.Since(start)
	kill.Do(func() { proxies[1].Kill(); killedAt = time.Now() })
	deadID := victims.Nodes[1].ID
	fmt.Printf("chaos: wrote %d tasks in %v; killed %s permanently at task %d\n",
		tasks, writeDur.Round(time.Millisecond), deadID, tasks/2)

	// Time to detection: how long the failure detector took (passive
	// evidence + active probes) to mark the killed node Down.
	detected := false
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		if fs.Health()[deadID].State == health.Down {
			detected = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if detected {
		fmt.Printf("chaos: detector marked %s Down %v after the kill (time to detection)\n",
			deadID, time.Since(killedAt).Round(time.Millisecond))
	} else {
		// A permanently dead node the detector never condemns is a failed
		// run, not a footnote: every later number (skips, repair, reads)
		// would be measuring a cluster that still trusts a corpse.
		log.Fatalf("chaos: detector never marked %s Down within 10s: %+v",
			deadID, fs.Health()[deadID])
	}

	start = time.Now()
	for i := 0; i < tasks; i++ {
		data, err := fs.ReadFile(fmt.Sprintf("/chaos/task-%d", i))
		if err != nil {
			log.Fatalf("chaos read task %d: %v", i, err)
		}
		if !bytes.Equal(data, payload) {
			log.Fatalf("chaos: task %d corrupted", i)
		}
	}
	readDur := time.Since(start)

	// Time to repair: wait for the targeted queue to restore every stripe
	// it can (units blocked on the dead node stay parked), then let a
	// scrub confirm there is nothing left that a full scan would find.
	if !fs.WaitRepairIdle(30 * time.Second) {
		log.Fatalf("chaos: repair queue never drained: %+v", fs.RepairStats())
	}
	mttr := time.Since(killedAt)
	rs := fs.RepairStats()
	fmt.Printf("chaos: repair queue idle %v after the kill (time to restored redundancy): enqueued %d, restored %d copies, %d parked on the dead node, %d full scrubs\n",
		mttr.Round(time.Millisecond), rs.Enqueued, rs.Restored, rs.Parked, rs.FullScrubs)
	srep, err := fs.Scrub()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chaos: post-repair scrub restored %d (0 = targeted repair missed nothing), %d deferred on the dead node, %d unrepairable\n",
		srep.Restored, len(srep.Deferred), len(srep.Unrepairable))

	rep, err := fs.Fsck()
	if err != nil {
		log.Fatal(err)
	}
	c := fs.Counters()
	fmt.Printf("chaos: verified %d tasks in %v; fsck: %d files, %d damaged, %d orphan stripes\n",
		tasks, readDur.Round(time.Millisecond), rep.Files, len(rep.Damaged), rep.OrphanStripes)
	fmt.Printf("chaos: injected faults: %v\n", faultwrap.TotalStats(proxies))
	ops := c.StoreOps
	if ops == 0 {
		ops = 1
	}
	fmt.Printf("chaos: store ops %d, attempts %d (%.2f per op), degraded writes %d, skipped replica writes %d, deep probes %d\n",
		c.StoreOps, c.StoreAttempts, float64(c.StoreAttempts)/float64(ops),
		c.DegradedWrites, c.SkippedReplicaWrites, c.DeepProbes)
	if red.Mode == core.RedundancyErasure {
		fmt.Printf("chaos: ec reconstructs %d (degraded reads served by Reed-Solomon), generation conflicts %d\n",
			c.ECReconstructs, c.ECGenConflicts)
	}
	if len(rep.Damaged) > 0 {
		log.Fatalf("chaos: DATA LOSS in %v", rep.Damaged)
	}
	if len(srep.Unrepairable) > 0 {
		log.Fatalf("chaos: UNREPAIRABLE stripes: %v", srep.Unrepairable)
	}

	// Revocation leg: with one victim already dead, revoke the surviving
	// one under the same injected faults — the worst-case "tenant wants
	// its memory back mid-incident" scenario — and demand zero loss again.
	// Erasure placement needs k+m nodes in the class, so the leg only runs
	// when the victim class can spare one (run with -victims >= k+m+1).
	if red.Mode == core.RedundancyErasure && len(victims.Nodes)-1 < red.DataShards+red.ParityShards {
		fmt.Printf("chaos: skipping revocation leg: revoking a victim would leave %d nodes, below the RS(%d,%d) placement need of %d\n",
			len(victims.Nodes)-1, red.DataShards, red.ParityShards, red.DataShards+red.ParityShards)
		fmt.Println("chaos: zero data loss")
		return
	}
	liveID := victims.Nodes[0].ID
	start = time.Now()
	evrep, err := fs.Evacuate(context.Background(), liveID, core.EvacOptions{})
	if err != nil {
		log.Fatalf("chaos: revocation of %s failed: %v", liveID, err)
	}
	fmt.Printf("chaos: revoked %s in %v (deadline %v): moved %d keys, %d orphans, %d deferred to repair, forced=%v\n",
		liveID, evrep.Elapsed.Round(time.Millisecond), evrep.Deadline,
		evrep.Moved, evrep.Orphans, evrep.Deferred, evrep.Forced)
	if evrep.Forced {
		fmt.Printf("chaos: forced release flushed %d at-risk key(s); repair queue restores redundancy\n", evrep.AtRisk)
	}
	if !fs.WaitRepairIdle(30 * time.Second) {
		log.Fatalf("chaos: repair queue never drained after revocation: %+v", fs.RepairStats())
	}
	for i := 0; i < tasks; i++ {
		data, err := fs.ReadFile(fmt.Sprintf("/chaos/task-%d", i))
		if err != nil || !bytes.Equal(data, payload) {
			log.Fatalf("chaos: task %d lost to revocation: %v", i, err)
		}
	}
	rep, err = fs.Fsck()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chaos: post-revocation fsck %v after revoke: %d files, %d damaged\n",
		time.Since(start).Round(time.Millisecond), rep.Files, len(rep.Damaged))
	if len(rep.Damaged) > 0 {
		log.Fatalf("chaos: DATA LOSS after revocation in %v", rep.Damaged)
	}
	fmt.Println("chaos: zero data loss")
}
