// Command memfss-bench runs a real-mode (actual TCP stores) dd-style
// micro-benchmark against an in-process MemFSS deployment: it launches
// own and victim stores on loopback, mounts the file system, and drives a
// bag of write tasks followed by a full read-back, reporting throughput —
// a laptop-scale analogue of the paper's Figure 2 workload.
//
// Usage:
//
//	memfss-bench -own 2 -victims 6 -alpha 0.25 -tasks 64 -size 8388608
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"memfss/internal/container"
	"memfss/internal/core"
	"memfss/internal/hrw"
)

func main() {
	log.SetFlags(0)
	ownN := flag.Int("own", 2, "number of own-node stores to launch")
	victimN := flag.Int("victims", 6, "number of victim-node stores to launch")
	alpha := flag.Float64("alpha", 0.25, "fraction of data kept on own nodes")
	tasks := flag.Int("tasks", 64, "number of dd tasks")
	size := flag.Int64("size", 8<<20, "bytes written per task")
	workers := flag.Int("workers", 8, "concurrent writer tasks")
	flag.Parse()

	const password = "bench-secret"
	own, err := core.StartLocalStores(*ownN, "own", password, 0)
	if err != nil {
		log.Fatal(err)
	}
	defer own.Close()
	classes := []core.ClassSpec{{Name: "own", Nodes: own.Nodes}}
	var victims *core.LocalStores
	if *victimN > 0 {
		victims, err = core.StartLocalStores(*victimN, "victim", password, 0)
		if err != nil {
			log.Fatal(err)
		}
		defer victims.Close()
		d, err := hrw.DeltaForOwnFraction(*alpha)
		if err != nil {
			log.Fatal(err)
		}
		if d >= 0 {
			classes[0].Weight = d
		}
		vc := core.ClassSpec{
			Name: "victim", Nodes: victims.Nodes, Victim: true,
			Limits: container.Limits{MemoryBytes: 1 << 34},
		}
		if d < 0 {
			vc.Weight = -d
		}
		classes = append(classes, vc)
	}
	fs, err := core.New(core.Config{Classes: classes, Password: password})
	if err != nil {
		log.Fatal(err)
	}
	defer fs.Close()

	payload := make([]byte, *size)
	rand.New(rand.NewSource(42)).Read(payload)

	fmt.Printf("memfss-bench: %d tasks x %d B over %d own + %d victim stores (alpha=%.2f)\n",
		*tasks, *size, *ownN, *victimN, *alpha)

	if err := fs.MkdirAll("/bench"); err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, *tasks)
	sem := make(chan struct{}, *workers)
	for i := 0; i < *tasks; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			errCh <- fs.WriteFile(fmt.Sprintf("/bench/task-%d", i), payload)
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			log.Fatal(err)
		}
	}
	writeDur := time.Since(start)
	total := float64(*tasks) * float64(*size)
	fmt.Printf("write: %.1f MB in %v (%.0f MB/s)\n", total/1e6, writeDur.Round(time.Millisecond), total/1e6/writeDur.Seconds())

	start = time.Now()
	for i := 0; i < *tasks; i++ {
		data, err := fs.ReadFile(fmt.Sprintf("/bench/task-%d", i))
		if err != nil {
			log.Fatal(err)
		}
		if int64(len(data)) != *size {
			log.Fatalf("task %d: read %d bytes, want %d", i, len(data), *size)
		}
	}
	readDur := time.Since(start)
	fmt.Printf("read:  %.1f MB in %v (%.0f MB/s)\n", total/1e6, readDur.Round(time.Millisecond), total/1e6/readDur.Seconds())

	var ownBytes, victimBytes int64
	for id, st := range fs.StoreStats() {
		if st.Class == "own" {
			ownBytes += st.BytesUsed
		} else {
			victimBytes += st.BytesUsed
		}
		_ = id
	}
	if ownBytes+victimBytes > 0 {
		fmt.Printf("placement: %.1f%% own / %.1f%% victim (target alpha %.0f%%)\n",
			100*float64(ownBytes)/float64(ownBytes+victimBytes),
			100*float64(victimBytes)/float64(ownBytes+victimBytes), 100**alpha)
	}
}
