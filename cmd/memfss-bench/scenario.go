package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"strings"

	"memfss/internal/chaos"
)

// runScenarios is the -scenario leg: execute named scenarios from the
// internal/chaos library, print one trajectory point per scenario, append
// each result to the JSON trajectory file, and exit nonzero if any SLO
// was violated. Each scenario builds (and tears down) its own cluster, so
// this leg ignores the topology/redundancy flags of the throughput modes.
func runScenarios(spec, out string) {
	var scs []chaos.Scenario
	if spec == "all" {
		scs = chaos.Scenarios()
	} else {
		for _, name := range strings.Split(spec, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			sc, ok := chaos.Lookup(name)
			if !ok {
				log.Fatalf("memfss-bench: unknown scenario %q (have: %s)",
					name, strings.Join(chaos.Names(), ", "))
			}
			scs = append(scs, sc)
		}
	}
	if len(scs) == 0 {
		log.Fatalf("memfss-bench: -scenario %q selected nothing (have: %s)",
			spec, strings.Join(chaos.Names(), ", "))
	}

	failed := 0
	for _, sc := range scs {
		fmt.Printf("scenario %-26s %s\n", sc.Name+":", sc.Describe)
		res, err := chaos.Run(context.Background(), sc, chaos.RunOptions{})
		if err != nil {
			log.Fatalf("scenario %s: %v", sc.Name, err)
		}
		printScenarioPoint(res)
		if out != "" {
			if err := chaos.AppendResult(out, res); err != nil {
				log.Fatalf("scenario %s: append %s: %v", sc.Name, out, err)
			}
		}
		if !res.Passed {
			failed++
		}
	}
	if out != "" {
		fmt.Printf("scenario: appended %d trajectory point(s) to %s\n", len(scs), out)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "scenario: %d/%d scenarios FAILED their SLOs\n", failed, len(scs))
		os.Exit(1)
	}
	fmt.Printf("scenario: all %d scenarios passed their SLOs\n", len(scs))
}

// printScenarioPoint renders one Result as a few human-readable lines —
// the same numbers AppendResult persists, for eyeballing a run in CI logs.
func printScenarioPoint(res *chaos.Result) {
	for _, st := range res.Streams {
		fmt.Printf("  stream %-10s ops=%-5d errors=%-3d rate=%.4f wp99=%.2fms rp99=%.2fms quota_rejects=%d\n",
			st.Name, st.Ops, st.Errors, st.WorstWindowRate, st.WriteP99Ms, st.ReadP99Ms, st.QuotaRejects)
	}
	for _, d := range res.Detection {
		if d.Ms < 0 {
			fmt.Printf("  detection %s: never condemned\n", d.Node)
		} else {
			fmt.Printf("  detection %s: %.0fms\n", d.Node, d.Ms)
		}
	}
	if res.RecoveryMs > 0 || res.RecoveryTimedOut {
		fmt.Printf("  recovery: %.0fms (timed_out=%v)\n", res.RecoveryMs, res.RecoveryTimedOut)
	}
	for _, ev := range res.Evacs {
		fmt.Printf("  evac %s: moved=%d deferred=%d at_risk=%d in %.0fms\n",
			ev.Node, ev.Moved, ev.Deferred, ev.AtRisk, ev.ElapsedMs)
	}
	fmt.Printf("  loss: fsck_damaged=%d mismatches=%d verified=%d tainted=%d scrub(restored=%d unrepairable=%d)\n",
		res.FsckDamaged, res.LossMismatches, res.VerifiedPaths, res.TaintedPaths,
		res.ScrubRestored, res.ScrubUnrepairable)
	fmt.Printf("  faults: pre_drops=%d mid_drops=%d cuts=%d delays=%d verb_drops=%d refused=%d\n",
		res.Faults.PreDrops, res.Faults.MidDrops, res.Faults.Cuts,
		res.Faults.Delays, res.Faults.VerbDrops, res.Faults.Refused)
	if res.Passed {
		fmt.Printf("  verdict: PASS (%.0fms workload)\n", res.DurationMs)
		return
	}
	fmt.Printf("  verdict: FAIL\n")
	for _, v := range res.Violations {
		fmt.Printf("    violation: %s\n", v)
	}
}
