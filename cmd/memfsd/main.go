// Command memfsd runs one MemFSS store daemon — the per-node in-memory
// data store (the role Redis plays in the paper). Start one per own node
// and one per victim node, then point memfsctl or the core library at
// them.
//
// Usage:
//
//	memfsd -addr :7700 -password secret -maxmem 10737418240
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"memfss/internal/kvstore"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7700", "listen address")
	password := flag.String("password", "", "require AUTH with this password")
	maxMem := flag.Int64("maxmem", 0, "memory cap in bytes (0 = unlimited); on victim nodes this is the scavenged-memory budget")
	flag.Parse()

	srv := kvstore.NewServer(kvstore.NewStore(*maxMem), *password)
	bound, err := srv.Listen(*addr)
	if err != nil {
		log.Fatalf("memfsd: %v", err)
	}
	fmt.Printf("memfsd: serving on %s (maxmem=%d, auth=%v)\n", bound, *maxMem, *password != "")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("memfsd: shutting down")
	if err := srv.Close(); err != nil {
		log.Fatalf("memfsd: close: %v", err)
	}
}
