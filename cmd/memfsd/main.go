// Command memfsd runs one MemFSS store daemon — the per-node in-memory
// data store (the role Redis plays in the paper). Start one per own node
// and one per victim node, then point memfsctl or the core library at
// them.
//
// With -health-addr the daemon also serves an HTTP observability
// endpoint:
//
//	GET /healthz   liveness plus the store's usage stats as JSON
//	GET /metrics   Prometheus text exposition of the telemetry registry
//
// so orchestrators and operators can watch a node without speaking the
// store wire protocol (clients additionally probe the wire port directly
// via PING, which is what the failure detector consumes). In gateway
// mode the same listener also serves the forensics endpoints:
//
//	GET /debug/traces  retained operation traces (tail-sampled span trees)
//	GET /debug/events  the cluster flight recorder (health, evac, lease,
//	                   repair, quota events)
//	PUT/GET /io/<path> read and write files through the gateway's own
//	                   (traced) data path
//
// With -debug-addr the daemon additionally serves net/http/pprof and the
// same forensics endpoints on a separate listener, and exports Go
// runtime gauges (goroutines, heap, GC pauses) into /metrics.
//
// With -own (and optionally -victims) the daemon additionally mounts a
// MemFSS client over the listed stores — gateway mode. The mounted
// FileSystem shares the daemon's telemetry registry, so /metrics exposes
// the full stack (store gauges, per-node kvstore client latency, data
// path, health detector, repair queue) and /healthz folds in the failure
// detector's per-node states and the repair queue's backlog. One gateway
// next to a workload gives the whole deployment's observability from a
// single scrape target.
//
// Usage:
//
//	memfsd -addr :7700 -password secret -maxmem 10737418240 -health-addr :7780
//	memfsd -addr :7700 -health-addr :7780 \
//	       -own 127.0.0.1:7700 -victims 127.0.0.1:7800,127.0.0.1:7801
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"memfss/internal/container"
	"memfss/internal/core"
	"memfss/internal/hrw"
	"memfss/internal/kvstore"
	"memfss/internal/obs"
	"memfss/internal/obs/trace"
	"memfss/internal/qos"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7700", "listen address")
	password := flag.String("password", "", "require AUTH with this password")
	maxMem := flag.Int64("maxmem", 0, "memory cap in bytes (0 = unlimited); on victim nodes this is the scavenged-memory budget")
	healthAddr := flag.String("health-addr", "", "serve GET /healthz and GET /metrics on this address; empty disables")
	ownList := flag.String("own", "", "gateway mode: comma-separated own-node store addresses to mount")
	victimList := flag.String("victims", "", "gateway mode: comma-separated victim-node store addresses")
	alpha := flag.Float64("alpha", 0.25, "gateway mode: fraction of data kept on own nodes")
	replicas := flag.Int("replicas", 0, "gateway mode: replication factor (0/1 = none)")
	victimCap := flag.Int64("victim-mem", 10<<30, "gateway mode: per-victim scavenged memory cap in bytes")
	slowOp := flag.Duration("slow-op", 0, "gateway mode: log ops slower than this with a trace (0 = 1s default, negative disables)")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof and /debug/{traces,events} on this address, and export Go runtime gauges; empty disables")
	qosBW := flag.Int64("qos-bw", 0, "gateway mode: aggregate tenant bandwidth budget in bytes/sec split by weight (0 = tenants metered but unpaced)")
	flag.Parse()

	store := kvstore.NewStore(*maxMem)
	srv := kvstore.NewServer(store, *password)
	bound, err := srv.Listen(*addr)
	if err != nil {
		log.Fatalf("memfsd: %v", err)
	}
	fmt.Printf("memfsd: serving on %s (maxmem=%d, auth=%v)\n", bound, *maxMem, *password != "")

	started := time.Now()
	reg := obs.NewRegistry()
	registerStoreGauges(reg, store, started)

	var fs *core.FileSystem
	if *ownList != "" {
		fs, err = mountGateway(reg, *ownList, *victimList, *alpha, *password, *replicas, *victimCap, *slowOp, *qosBW)
		if err != nil {
			log.Fatalf("memfsd: gateway mount: %v", err)
		}
		defer fs.Close()
		fmt.Printf("memfsd: gateway mounted over own=[%s] victims=[%s]\n", *ownList, *victimList)
		// Reload the persisted tenant directory so quotas, weights and
		// priorities survive a gateway restart.
		if specs, err := fs.LoadTenants(); err != nil {
			log.Printf("memfsd: tenant reload: %v", err)
		} else if len(specs) > 0 {
			fmt.Printf("memfsd: %d tenant(s) loaded (qos-bw=%d B/s)\n", len(specs), *qosBW)
		}
	}

	if *healthAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", obs.Handler(reg))
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(healthzPayload(store, bound, started, fs))
		})
		if fs != nil {
			// Trace/event forensics ride the health listener too, so a
			// gateway scrape target answers "why was that op slow" without
			// opening the debug port.
			mux.Handle("/debug/traces", trace.Handler(fs.Traces()))
			mux.Handle("/debug/events", trace.EventsHandler(fs.Events()))
			// /io routes HTTP reads and writes through the gateway's own
			// data path, so the traces and exemplars above reflect real
			// traffic.
			mux.Handle("/io/", ioHandler(fs))
		}
		hsrv := &http.Server{Addr: *healthAddr, Handler: mux}
		go func() {
			if err := hsrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("memfsd: health endpoint: %v", err)
			}
		}()
		defer hsrv.Close()
		fmt.Printf("memfsd: health endpoint on http://%s/healthz (metrics on /metrics)\n", *healthAddr)
	}

	if *debugAddr != "" {
		stop := make(chan struct{})
		defer close(stop)
		registerRuntimeGauges(reg, stop)
		dsrv := serveDebug(*debugAddr, fs)
		defer dsrv.Close()
		fmt.Printf("memfsd: debug endpoint on http://%s/debug/pprof/ (traces on /debug/traces)\n", *debugAddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("memfsd: shutting down")
	if err := srv.Close(); err != nil {
		log.Fatalf("memfsd: close: %v", err)
	}
}

// registerStoreGauges exports the local store's usage as gauge families,
// read live at scrape time.
func registerStoreGauges(reg *obs.Registry, store *kvstore.Store, started time.Time) {
	reg.Gauge("memfss_store_uptime_seconds", "Daemon uptime.", nil, func() float64 {
		return time.Since(started).Seconds()
	})
	reg.Gauge("memfss_store_bytes_used", "Payload bytes resident in the store.", nil, func() float64 {
		return float64(store.Stats().BytesUsed)
	})
	reg.Gauge("memfss_store_max_memory_bytes", "Configured memory cap (0 = unlimited).", nil, func() float64 {
		return float64(store.Stats().MaxMemory)
	})
	reg.Gauge("memfss_store_keys", "Resident keys.", nil, func() float64 {
		return float64(store.Stats().NumKeys)
	})
	reg.Gauge("memfss_store_ops", "Commands processed since start.", nil, func() float64 {
		return float64(store.Stats().TotalOps)
	})
	reg.Gauge("memfss_store_pressure", "1 while the store is above its memory-pressure watermark.", nil, func() float64 {
		if store.Stats().Pressure {
			return 1
		}
		return 0
	})
}

// mountGateway builds the core Config from the CLI node lists (the same
// shape memfsctl uses) and mounts a FileSystem sharing reg.
func mountGateway(reg *obs.Registry, ownList, victimList string, alpha float64,
	password string, replicas int, victimCap int64, slowOp time.Duration, qosBW int64) (*core.FileSystem, error) {
	nodes := func(prefix, list string) []core.NodeSpec {
		if list == "" {
			return nil
		}
		var out []core.NodeSpec
		for i, addr := range strings.Split(list, ",") {
			out = append(out, core.NodeSpec{ID: fmt.Sprintf("%s-%d", prefix, i), Addr: strings.TrimSpace(addr)})
		}
		return out
	}
	classes := []core.ClassSpec{{Name: "own", Nodes: nodes("own", ownList)}}
	victims := nodes("victim", victimList)
	if len(victims) > 0 {
		d, err := hrw.DeltaForOwnFraction(alpha)
		if err != nil {
			return nil, err
		}
		if d >= 0 {
			classes[0].Weight = d
		}
		vc := core.ClassSpec{
			Name: "victim", Nodes: victims, Victim: true,
			Limits: container.Limits{MemoryBytes: victimCap},
		}
		if d < 0 {
			vc.Weight = -d
		}
		classes = append(classes, vc)
	}
	cfg := core.Config{
		Classes:  classes,
		Password: password,
		Obs:      core.ObsPolicy{Registry: reg, SlowOpThreshold: slowOp},
		// The gateway is the QoS enforcement point: tenants share one
		// registry with the telemetry registry so /metrics exposes the
		// memfss_qos_* families alongside the data path.
		QoS: core.QoSPolicy{Tenants: qos.NewRegistry(qos.Options{
			TotalBandwidth: qosBW,
			Obs:            reg,
		})},
	}
	if replicas > 1 {
		cfg.Redundancy = core.Redundancy{Mode: core.RedundancyReplicate, Replicas: replicas}
	}
	return core.New(cfg)
}

// healthzPayload assembles the /healthz JSON: always the local store's
// stats; in gateway mode also the detector's per-node states, the repair
// queue, and the data-path counters.
func healthzPayload(store *kvstore.Store, bound string, started time.Time, fs *core.FileSystem) map[string]any {
	st := store.Stats()
	out := map[string]any{
		"status":         "ok",
		"addr":           bound,
		"uptime_seconds": int64(time.Since(started).Seconds()),
		"bytes_used":     st.BytesUsed,
		"max_memory":     st.MaxMemory,
		"num_keys":       st.NumKeys,
		"total_ops":      st.TotalOps,
		"pressure":       st.Pressure,
		"over_cap":       st.MaxMemory > 0 && st.BytesUsed > st.MaxMemory,
	}
	if fs == nil {
		return out
	}
	if draining := fs.Draining(); len(draining) > 0 {
		out["draining"] = draining
	}
	if snap := fs.Health(); snap != nil {
		now := time.Now()
		nodes := make(map[string]any, len(snap))
		for id, h := range snap {
			n := map[string]any{
				"state":        h.State.String(),
				"since":        h.Since.Format(time.RFC3339),
				"age_seconds":  h.Age(now).Seconds(),
				"consec_fails": h.ConsecFails,
				"consec_oks":   h.ConsecOKs,
				"last_seen":    h.LastSeen.Format(time.RFC3339),
			}
			if age, ok := h.SeenAge(now); ok {
				n["last_seen_age_seconds"] = age.Seconds()
			}
			nodes[id] = n
		}
		out["health"] = nodes
	}
	rs := fs.RepairStats()
	out["repair"] = map[string]any{
		"enqueued":     rs.Enqueued,
		"repaired":     rs.Repaired,
		"restored":     rs.Restored,
		"unrepairable": rs.Unrepairable,
		"overflows":    rs.Overflows,
		"full_scrubs":  rs.FullScrubs,
		"queued":       rs.Queued,
		"parked":       rs.Parked,
		"in_flight":    rs.InFlight,
	}
	c := fs.Counters()
	out["fs"] = map[string]any{
		"bytes_written":          c.BytesWritten,
		"bytes_read":             c.BytesRead,
		"stripe_writes":          c.StripeWrites,
		"stripe_reads":           c.StripeReads,
		"deep_probes":            c.DeepProbes,
		"repairs":                c.Repairs,
		"degraded_writes":        c.DegradedWrites,
		"skipped_replica_writes": c.SkippedReplicaWrites,
		"fenced_replica_writes":  c.FencedWrites,
		"no_space_writes":        c.NoSpaceWrites,
		"store_ops":              c.StoreOps,
		"store_attempts":         c.StoreAttempts,
	}
	if specs := fs.Tenants(); len(specs) > 0 {
		tenants := make(map[string]any, len(specs))
		for _, s := range specs {
			tenants[s.Name] = map[string]any{
				"quota":    s.QuotaBytes,
				"used":     fs.TenantUsage(s.Name),
				"weight":   s.Weight,
				"priority": s.Priority.String(),
			}
		}
		out["tenants"] = tenants
	}
	return out
}
