// Command memfsd runs one MemFSS store daemon — the per-node in-memory
// data store (the role Redis plays in the paper). Start one per own node
// and one per victim node, then point memfsctl or the core library at
// them.
//
// With -health-addr the daemon also serves an HTTP health endpoint:
// GET /healthz returns liveness plus the store's usage stats as JSON, so
// orchestrators and operators can watch a node without speaking the store
// wire protocol (clients additionally probe the wire port directly via
// PING, which is what the failure detector consumes).
//
// Usage:
//
//	memfsd -addr :7700 -password secret -maxmem 10737418240 -health-addr :7780
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"memfss/internal/kvstore"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7700", "listen address")
	password := flag.String("password", "", "require AUTH with this password")
	maxMem := flag.Int64("maxmem", 0, "memory cap in bytes (0 = unlimited); on victim nodes this is the scavenged-memory budget")
	healthAddr := flag.String("health-addr", "", "serve GET /healthz (JSON liveness + store stats) on this address; empty disables")
	flag.Parse()

	store := kvstore.NewStore(*maxMem)
	srv := kvstore.NewServer(store, *password)
	bound, err := srv.Listen(*addr)
	if err != nil {
		log.Fatalf("memfsd: %v", err)
	}
	fmt.Printf("memfsd: serving on %s (maxmem=%d, auth=%v)\n", bound, *maxMem, *password != "")

	if *healthAddr != "" {
		started := time.Now()
		mux := http.NewServeMux()
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
			st := store.Stats()
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(map[string]any{
				"status":         "ok",
				"addr":           bound,
				"uptime_seconds": int64(time.Since(started).Seconds()),
				"bytes_used":     st.BytesUsed,
				"max_memory":     st.MaxMemory,
				"num_keys":       st.NumKeys,
				"total_ops":      st.TotalOps,
				"pressure":       st.Pressure,
			})
		})
		hsrv := &http.Server{Addr: *healthAddr, Handler: mux}
		go func() {
			if err := hsrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("memfsd: health endpoint: %v", err)
			}
		}()
		defer hsrv.Close()
		fmt.Printf("memfsd: health endpoint on http://%s/healthz\n", *healthAddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("memfsd: shutting down")
	if err := srv.Close(); err != nil {
		log.Fatalf("memfsd: close: %v", err)
	}
}
