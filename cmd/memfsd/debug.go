package main

// Opt-in debug surface: -debug-addr serves net/http/pprof plus the
// /debug/traces and /debug/events forensics endpoints on a separate
// listener (profiling and trace dumps are operator tools, not something
// to expose wherever /metrics is scraped), and its presence also turns
// on the Go runtime gauges in the shared registry.

import (
	"log"
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"

	"memfss/internal/core"
	"memfss/internal/obs"
	"memfss/internal/obs/trace"
)

// debugMux assembles the -debug-addr handler: pprof plus trace/event
// forensics (503 when not in gateway mode — the handlers accept nil).
func debugMux(fs *core.FileSystem) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	var store *trace.Store
	var journal *trace.Journal
	if fs != nil {
		store, journal = fs.Traces(), fs.Events()
	}
	mux.Handle("/debug/traces", trace.Handler(store))
	mux.Handle("/debug/events", trace.EventsHandler(journal))
	return mux
}

// serveDebug starts the pprof/forensics listener; returned server is
// closed by the caller on shutdown.
func serveDebug(addr string, fs *core.FileSystem) *http.Server {
	srv := &http.Server{Addr: addr, Handler: debugMux(fs)}
	go func() {
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Printf("memfsd: debug endpoint: %v", err)
		}
	}()
	return srv
}

// registerRuntimeGauges exports Go runtime health — goroutine count,
// heap footprint, GC activity — read live at scrape time, plus a GC
// pause histogram fed by a background sampler.
func registerRuntimeGauges(reg *obs.Registry, stop <-chan struct{}) {
	reg.Gauge("memfss_go_goroutines", "Live goroutines.", nil, func() float64 {
		return float64(runtime.NumGoroutine())
	})
	reg.Gauge("memfss_go_heap_alloc_bytes", "Heap bytes in use (runtime.MemStats.HeapAlloc).", nil, func() float64 {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return float64(m.HeapAlloc)
	})
	reg.Gauge("memfss_go_heap_sys_bytes", "Heap bytes obtained from the OS (runtime.MemStats.HeapSys).", nil, func() float64 {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return float64(m.HeapSys)
	})
	reg.Gauge("memfss_go_gc_runs", "Completed GC cycles.", nil, func() float64 {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return float64(m.NumGC)
	})
	pauses := reg.Histogram("memfss_go_gc_pause_seconds",
		"Stop-the-world GC pause durations.", nil, nil)
	go sampleGCPauses(pauses, stop)
}

// sampleGCPauses folds new GC pauses into the histogram every few
// seconds. MemStats keeps the last 256 pauses in a circular buffer
// keyed by cycle number, so the sampler only observes cycles it has not
// seen yet.
func sampleGCPauses(h *obs.Histogram, stop <-chan struct{}) {
	var last uint32
	tick := time.NewTicker(5 * time.Second)
	defer tick.Stop()
	for {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		if m.NumGC > last {
			newest := m.NumGC - last
			if newest > 256 {
				newest = 256 // older pauses fell out of the ring
			}
			for i := uint32(0); i < newest; i++ {
				cycle := m.NumGC - i
				h.Observe(time.Duration(m.PauseNs[(cycle+255)%256]))
			}
			last = m.NumGC
		}
		select {
		case <-stop:
			return
		case <-tick.C:
		}
	}
}
