package main

// Gateway HTTP I/O: a minimal PUT/GET file surface over the mounted
// FileSystem, served next to /healthz. Workloads that speak HTTP (or a
// curl in a smoke test) can push ops through the gateway's own traced
// data path — which is what makes the gateway's /debug/traces and
// histogram exemplars reflect real traffic instead of an idle mount.

import (
	"errors"
	"io"
	"net/http"
	"strings"

	"memfss/internal/core"
)

// maxIOBody bounds one HTTP write so a stray upload cannot balloon the
// scavenged-memory pool (64 MiB, far above any smoke workload).
const maxIOBody = 64 << 20

// ioHandler serves PUT (write), GET (read), and DELETE under /io/<path>,
// mapping the URL suffix onto the FileSystem namespace.
func ioHandler(fs *core.FileSystem) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		path := strings.TrimPrefix(r.URL.Path, "/io")
		if path == "" || path == "/" {
			http.Error(w, "memfsd: /io/<path> needs a file path", http.StatusBadRequest)
			return
		}
		switch r.Method {
		case http.MethodPut, http.MethodPost:
			data, err := io.ReadAll(io.LimitReader(r.Body, maxIOBody+1))
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			if len(data) > maxIOBody {
				http.Error(w, "memfsd: body exceeds /io size limit", http.StatusRequestEntityTooLarge)
				return
			}
			if err := fs.WriteFile(path, data); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.WriteHeader(http.StatusNoContent)
		case http.MethodGet:
			data, err := fs.ReadFile(path)
			if err != nil {
				status := http.StatusInternalServerError
				if errors.Is(err, core.ErrNotExist) {
					status = http.StatusNotFound
				}
				http.Error(w, err.Error(), status)
				return
			}
			w.Header().Set("Content-Type", "application/octet-stream")
			_, _ = w.Write(data)
		case http.MethodDelete:
			if err := fs.Remove(path); err != nil {
				status := http.StatusInternalServerError
				if errors.Is(err, core.ErrNotExist) {
					status = http.StatusNotFound
				}
				http.Error(w, err.Error(), status)
				return
			}
			w.WriteHeader(http.StatusNoContent)
		default:
			http.Error(w, "memfsd: /io supports GET, PUT, DELETE", http.StatusMethodNotAllowed)
		}
	})
}
